//===- core/executor.cpp - Runtime evaluation of HashPlans ---------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/executor.h"

#include "core/jit.h"
#include "hashes/aes_round.h"
#include "hashes/murmur.h"
#include "support/bit_ops.h"
#include "support/cpu_features.h"
#include "support/trace.h"
#include "support/unreachable.h"

#include <algorithm>
#include <bit>

#if defined(__AVX2__) && !defined(SEPE_DISABLE_AVX2)
#define SEPE_EXEC_AVX2 1
#endif

#if defined(SEPE_HAVE_AESNI) || defined(SEPE_EXEC_AVX2)
#include <immintrin.h>
#endif

using namespace sepe;

namespace {

/// Initial AES state; arbitrary odd constants (first digits of pi/e) —
/// the Aes family derives its dispersion from the round function, not
/// the seed.
constexpr Block128 AesInitState{0x243f6a8885a308d3ULL,
                                0x13198a2e03707344ULL};

using EvalFnT = uint64_t (*)(const HashPlan &, const char *, size_t);
using BatchFnT = void (*)(const HashPlan &, const std::string_view *,
                          uint64_t *, size_t);

uint64_t evalFallback(const HashPlan &, const char *Data, size_t Len) {
  return murmurHashBytes(Data, Len, StlHashSeed);
}

// --- Fixed-length paths ---------------------------------------------------
//
// The fixed-length kernels are "fused": the step count is a template
// parameter for the common plan sizes (NSteps != 0), so the step loop
// unrolls away and the kernel is the same straight-line code codegen.h
// would emit. NSteps == 0 is the generic runtime-count variant.

template <size_t NSteps = 0>
uint64_t evalFixedXor(const HashPlan &Plan, const char *Data, size_t) {
  const PlanStep *Steps = Plan.Steps.data();
  const size_t M = NSteps != 0 ? NSteps : Plan.Steps.size();
  uint64_t Hash = 0;
  for (size_t S = 0; S != M; ++S)
    Hash ^= loadU64Le(Data + Steps[S].Offset);
  return Hash;
}

template <uint64_t (*Pext)(uint64_t, uint64_t), size_t NSteps = 0>
uint64_t evalFixedPext(const HashPlan &Plan, const char *Data, size_t) {
  const PlanStep *Steps = Plan.Steps.data();
  const size_t M = NSteps != 0 ? NSteps : Plan.Steps.size();
  uint64_t Hash = 0;
  // Chunks are *rotated* into place rather than shifted so formats with
  // more than 64 relevant bits wrap around without losing entropy
  // (Section 4.2: zero T-Coll even on 400-relevant-bit keys). For
  // chunks that fit, rotl is identical to the shift in Figure 12.
  for (size_t S = 0; S != M; ++S)
    Hash ^= std::rotl(Pext(loadU64Le(Data + Steps[S].Offset), Steps[S].Mask),
                      Steps[S].Shift);
  return Hash;
}

template <Block128 (*Round)(Block128, Block128)>
uint64_t evalFixedAes(const HashPlan &Plan, const char *Data, size_t Len) {
  Block128 State = AesInitState;
  State.Lo ^= Len;
  const std::vector<PlanStep> &Steps = Plan.Steps;
  size_t I = 0;
  for (; I + 1 < Steps.size(); I += 2) {
    const Block128 Chunk{loadU64Le(Data + Steps[I].Offset),
                         loadU64Le(Data + Steps[I + 1].Offset)};
    State = Round(State, Chunk);
  }
  if (I < Steps.size()) {
    // Odd number of loads: replicate the last word to fill the block,
    // the behavior that costs the Aes family a handful of collisions on
    // keys shorter than 16 bytes (Section 4.2).
    const uint64_t Last = loadU64Le(Data + Steps[I].Offset);
    State = Round(State, Block128{Last, Last});
  }
  State = Round(State, AesInitState);
  return State.Lo ^ State.Hi;
}

#if defined(SEPE_HAVE_AESNI)
/// Register-resident variant of evalFixedAes: bit-identical to the
/// template instantiated with aesEncRoundHw, but the 128-bit state stays
/// in an xmm register across rounds instead of round-tripping through
/// Block128.
uint64_t evalFixedAesNative(const HashPlan &Plan, const char *Data,
                            size_t Len) {
  const __m128i Init = _mm_set_epi64x(
      static_cast<long long>(0x13198a2e03707344ULL),
      static_cast<long long>(0x243f6a8885a308d3ULL));
  __m128i State = _mm_set_epi64x(
      static_cast<long long>(0x13198a2e03707344ULL),
      static_cast<long long>(0x243f6a8885a308d3ULL ^ Len));
  const std::vector<PlanStep> &Steps = Plan.Steps;
  size_t I = 0;
  for (; I + 1 < Steps.size(); I += 2) {
    const __m128i Chunk = _mm_set_epi64x(
        static_cast<long long>(loadU64Le(Data + Steps[I + 1].Offset)),
        static_cast<long long>(loadU64Le(Data + Steps[I].Offset)));
    State = _mm_aesenc_si128(State, Chunk);
  }
  if (I < Steps.size()) {
    const long long Last =
        static_cast<long long>(loadU64Le(Data + Steps[I].Offset));
    State = _mm_aesenc_si128(State, _mm_set_epi64x(Last, Last));
  }
  State = _mm_aesenc_si128(State, Init);
  const uint64_t Lo = static_cast<uint64_t>(_mm_cvtsi128_si64(State));
  const uint64_t Hi = static_cast<uint64_t>(
      _mm_cvtsi128_si64(_mm_unpackhi_epi64(State, State)));
  return Lo ^ Hi;
}
#endif

// --- Short forced-specialization path (RQ7) -------------------------------

uint64_t evalPartialXor(const HashPlan &Plan, const char *Data, size_t Len) {
  (void)Plan;
  return loadBytesLe(Data, Len < 8 ? Len : 8);
}

template <uint64_t (*Pext)(uint64_t, uint64_t)>
uint64_t evalPartialPext(const HashPlan &Plan, const char *Data, size_t Len) {
  const uint64_t Word = loadBytesLe(Data, Len < 8 ? Len : 8);
  return Pext(Word, Plan.Steps.front().Mask);
}

template <Block128 (*Round)(Block128, Block128)>
uint64_t evalPartialAes(const HashPlan &Plan, const char *Data, size_t Len) {
  (void)Plan;
  const uint64_t Word = loadBytesLe(Data, Len < 8 ? Len : 8);
  Block128 State = AesInitState;
  State.Lo ^= Len;
  State = Round(State, Block128{Word, Word});
  State = Round(State, AesInitState);
  return State.Lo ^ State.Hi;
}

// --- Variable-length (skip table) paths: Figure 8 -------------------------

/// Walks the skip table, handing each loaded word and then each tail
/// byte to the callbacks.
template <typename WordFn, typename ByteFn>
void walkSkipTable(const HashPlan &Plan, const char *Data, size_t Len,
                   WordFn Word, ByteFn Byte) {
  const SkipTable &Table = Plan.Skip;
  const char *P = Data;
  const char *End = Data + Len;
  if (!Table.Skip.empty()) {
    P += Table.Skip[0];
    for (size_t C = 1; C != Table.Skip.size(); ++C) {
      Word(loadU64Le(P), C - 1);
      P += Table.Skip[C];
    }
  }
  while (P < End) {
    Byte(static_cast<uint8_t>(*P));
    ++P;
  }
}

uint64_t evalVarXor(const HashPlan &Plan, const char *Data, size_t Len) {
  uint64_t Hash = Len;
  unsigned TailShift = 0;
  walkSkipTable(
      Plan, Data, Len, [&](uint64_t W, size_t) { Hash ^= W; },
      [&](uint8_t B) {
        Hash ^= std::rotl(static_cast<uint64_t>(B),
                          static_cast<int>(TailShift));
        TailShift = (TailShift + 8) & 63;
      });
  return Hash;
}

template <uint64_t (*Pext)(uint64_t, uint64_t)>
uint64_t evalVarPext(const HashPlan &Plan, const char *Data, size_t Len) {
  uint64_t Hash = Len;
  unsigned BitOffset = 0;
  unsigned TailShift = 0;
  walkSkipTable(
      Plan, Data, Len,
      [&](uint64_t W, size_t C) {
        const uint64_t Mask = Plan.Skip.Masks[C];
        Hash ^= std::rotl(Pext(W, Mask), static_cast<int>(BitOffset & 63));
        BitOffset += static_cast<unsigned>(__builtin_popcountll(Mask));
      },
      [&](uint8_t B) {
        Hash ^= std::rotl(static_cast<uint64_t>(B),
                          static_cast<int>((BitOffset + TailShift) & 63));
        TailShift = (TailShift + 8) & 63;
      });
  return Hash;
}

template <Block128 (*Round)(Block128, Block128)>
uint64_t evalVarAes(const HashPlan &Plan, const char *Data, size_t Len) {
  Block128 State = AesInitState;
  State.Lo ^= Len;
  uint64_t Pending = 0;
  bool HavePending = false;
  uint64_t TailAcc = 0;
  unsigned TailShift = 0;
  walkSkipTable(
      Plan, Data, Len,
      [&](uint64_t W, size_t) {
        if (HavePending) {
          State = Round(State, Block128{Pending, W});
          HavePending = false;
          return;
        }
        Pending = W;
        HavePending = true;
      },
      [&](uint8_t B) {
        TailAcc ^= static_cast<uint64_t>(B) << TailShift;
        TailShift = (TailShift + 8) & 63;
      });
  if (HavePending)
    State = Round(State, Block128{Pending, Pending});
  if (TailShift != 0 || TailAcc != 0)
    State = Round(State, Block128{TailAcc, Len});
  State = Round(State, AesInitState);
  return State.Lo ^ State.Hi;
}

// --- Batch evaluators -----------------------------------------------------
//
// The fixed-length batch kernels process four keys per iteration: the
// four hash states live in registers at once, so the (independent) key
// loads overlap instead of serializing behind each key's combine chain —
// the memory-level parallelism a per-key call can never expose. The
// variable-length and partial-load shapes fall back to a per-key loop
// over the already-selected single kernel; they still amortize the
// indirect call but keep one code path.

template <EvalFnT Eval>
void batchViaSingle(const HashPlan &Plan, const std::string_view *Keys,
                    uint64_t *Out, size_t N) {
  for (size_t I = 0; I != N; ++I)
    Out[I] = Eval(Plan, Keys[I].data(), Keys[I].size());
}

template <size_t NSteps = 0>
void batchFixedXor(const HashPlan &Plan, const std::string_view *Keys,
                   uint64_t *Out, size_t N) {
  const PlanStep *Steps = Plan.Steps.data();
  const size_t M = NSteps != 0 ? NSteps : Plan.Steps.size();
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    const char *D0 = Keys[I + 0].data();
    const char *D1 = Keys[I + 1].data();
    const char *D2 = Keys[I + 2].data();
    const char *D3 = Keys[I + 3].data();
    uint64_t H0 = 0, H1 = 0, H2 = 0, H3 = 0;
    for (size_t S = 0; S != M; ++S) {
      const uint32_t Off = Steps[S].Offset;
      H0 ^= loadU64Le(D0 + Off);
      H1 ^= loadU64Le(D1 + Off);
      H2 ^= loadU64Le(D2 + Off);
      H3 ^= loadU64Le(D3 + Off);
    }
    Out[I + 0] = H0;
    Out[I + 1] = H1;
    Out[I + 2] = H2;
    Out[I + 3] = H3;
  }
  for (; I != N; ++I)
    Out[I] = evalFixedXor<NSteps>(Plan, Keys[I].data(), Keys[I].size());
}

template <uint64_t (*Pext)(uint64_t, uint64_t), size_t NSteps = 0>
void batchFixedPext(const HashPlan &Plan, const std::string_view *Keys,
                    uint64_t *Out, size_t N) {
  const PlanStep *Steps = Plan.Steps.data();
  const size_t M = NSteps != 0 ? NSteps : Plan.Steps.size();
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    const char *D0 = Keys[I + 0].data();
    const char *D1 = Keys[I + 1].data();
    const char *D2 = Keys[I + 2].data();
    const char *D3 = Keys[I + 3].data();
    uint64_t H0 = 0, H1 = 0, H2 = 0, H3 = 0;
    for (size_t S = 0; S != M; ++S) {
      const uint32_t Off = Steps[S].Offset;
      const uint64_t Mask = Steps[S].Mask;
      const int Shift = Steps[S].Shift;
      H0 ^= std::rotl(Pext(loadU64Le(D0 + Off), Mask), Shift);
      H1 ^= std::rotl(Pext(loadU64Le(D1 + Off), Mask), Shift);
      H2 ^= std::rotl(Pext(loadU64Le(D2 + Off), Mask), Shift);
      H3 ^= std::rotl(Pext(loadU64Le(D3 + Off), Mask), Shift);
    }
    Out[I + 0] = H0;
    Out[I + 1] = H1;
    Out[I + 2] = H2;
    Out[I + 3] = H3;
  }
  for (; I != N; ++I)
    Out[I] =
        evalFixedPext<Pext, NSteps>(Plan, Keys[I].data(), Keys[I].size());
}

#if defined(SEPE_HAVE_AESNI)
/// Four interleaved copies of evalFixedAesNative: the AES round has a
/// multi-cycle latency but single-cycle throughput, so four independent
/// states keep the AES unit busy instead of stalling on one chain.
void batchFixedAesNative(const HashPlan &Plan, const std::string_view *Keys,
                         uint64_t *Out, size_t N) {
  const __m128i Init = _mm_set_epi64x(
      static_cast<long long>(0x13198a2e03707344ULL),
      static_cast<long long>(0x243f6a8885a308d3ULL));
  const std::vector<PlanStep> &Steps = Plan.Steps;
  const size_t M = Steps.size();
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    const char *D0 = Keys[I + 0].data();
    const char *D1 = Keys[I + 1].data();
    const char *D2 = Keys[I + 2].data();
    const char *D3 = Keys[I + 3].data();
    __m128i S0 = _mm_xor_si128(
        Init, _mm_set_epi64x(0, static_cast<long long>(Keys[I + 0].size())));
    __m128i S1 = _mm_xor_si128(
        Init, _mm_set_epi64x(0, static_cast<long long>(Keys[I + 1].size())));
    __m128i S2 = _mm_xor_si128(
        Init, _mm_set_epi64x(0, static_cast<long long>(Keys[I + 2].size())));
    __m128i S3 = _mm_xor_si128(
        Init, _mm_set_epi64x(0, static_cast<long long>(Keys[I + 3].size())));
    size_t S = 0;
    for (; S + 1 < M; S += 2) {
      const uint32_t OffLo = Steps[S].Offset;
      const uint32_t OffHi = Steps[S + 1].Offset;
      const auto Chunk = [OffLo, OffHi](const char *D) {
        return _mm_set_epi64x(
            static_cast<long long>(loadU64Le(D + OffHi)),
            static_cast<long long>(loadU64Le(D + OffLo)));
      };
      S0 = _mm_aesenc_si128(S0, Chunk(D0));
      S1 = _mm_aesenc_si128(S1, Chunk(D1));
      S2 = _mm_aesenc_si128(S2, Chunk(D2));
      S3 = _mm_aesenc_si128(S3, Chunk(D3));
    }
    if (S < M) {
      const uint32_t Off = Steps[S].Offset;
      const auto Last = [Off](const char *D) {
        const long long W = static_cast<long long>(loadU64Le(D + Off));
        return _mm_set_epi64x(W, W);
      };
      S0 = _mm_aesenc_si128(S0, Last(D0));
      S1 = _mm_aesenc_si128(S1, Last(D1));
      S2 = _mm_aesenc_si128(S2, Last(D2));
      S3 = _mm_aesenc_si128(S3, Last(D3));
    }
    S0 = _mm_aesenc_si128(S0, Init);
    S1 = _mm_aesenc_si128(S1, Init);
    S2 = _mm_aesenc_si128(S2, Init);
    S3 = _mm_aesenc_si128(S3, Init);
    const auto Fold = [](__m128i State) {
      const uint64_t Lo = static_cast<uint64_t>(_mm_cvtsi128_si64(State));
      const uint64_t Hi = static_cast<uint64_t>(
          _mm_cvtsi128_si64(_mm_unpackhi_epi64(State, State)));
      return Lo ^ Hi;
    };
    Out[I + 0] = Fold(S0);
    Out[I + 1] = Fold(S1);
    Out[I + 2] = Fold(S2);
    Out[I + 3] = Fold(S3);
  }
  for (; I != N; ++I)
    Out[I] = evalFixedAesNative(Plan, Keys[I].data(), Keys[I].size());
}
#endif

// --- Network-compacted software-pext batch --------------------------------
//
// At Portable/NoBitExtract the per-key pextSoft walks the mask bit by
// bit — tolerable for one call, painful across a batch. A plan's masks
// are fixed, so the batch entry compiles each step's PextNetwork
// (support/bit_ops.h) once per call; every key then pays only the
// network's few shift-mask rounds instead of the 64-iteration loop.
// Bit-identical to pextSoft by the network's contract, pinned by the
// batch property tests.

/// Step cap for the kernels that precompute per-step state on the
/// stack; plans beyond it (128-byte fixed keys) take the plain paths.
constexpr size_t MaxPrecomputedSteps = 16;

template <size_t NSteps = 0>
void batchFixedPextNetwork(const HashPlan &Plan, const std::string_view *Keys,
                           uint64_t *Out, size_t N) {
  const PlanStep *Steps = Plan.Steps.data();
  const size_t M = NSteps != 0 ? NSteps : Plan.Steps.size();
  PextNetwork Nets[MaxPrecomputedSteps];
  for (size_t S = 0; S != M; ++S)
    Nets[S] = PextNetwork::compile(Steps[S].Mask);
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    const char *D0 = Keys[I + 0].data();
    const char *D1 = Keys[I + 1].data();
    const char *D2 = Keys[I + 2].data();
    const char *D3 = Keys[I + 3].data();
    uint64_t H0 = 0, H1 = 0, H2 = 0, H3 = 0;
    for (size_t S = 0; S != M; ++S) {
      const uint32_t Off = Steps[S].Offset;
      const int Shift = Steps[S].Shift;
      H0 ^= std::rotl(Nets[S].apply(loadU64Le(D0 + Off)), Shift);
      H1 ^= std::rotl(Nets[S].apply(loadU64Le(D1 + Off)), Shift);
      H2 ^= std::rotl(Nets[S].apply(loadU64Le(D2 + Off)), Shift);
      H3 ^= std::rotl(Nets[S].apply(loadU64Le(D3 + Off)), Shift);
    }
    Out[I + 0] = H0;
    Out[I + 1] = H1;
    Out[I + 2] = H2;
    Out[I + 3] = H3;
  }
  for (; I != N; ++I)
    Out[I] =
        evalFixedPext<pextSoft, NSteps>(Plan, Keys[I].data(), Keys[I].size());
}

#if defined(SEPE_EXEC_AVX2)
// --- AVX2 wide batch kernels ----------------------------------------------
//
// The xor family is pure load-xor, so its wide kernel attacks the load
// count rather than the combine: runs of stride-8 step offsets collapse
// into one 32-byte (or 16-byte) load per key whose 64-bit lanes ARE the
// run's step words, cutting a 13-load INTS key to four loads. Four keys'
// accumulators then lane-reduce together through an unpack/permute
// shuffle tree (xor commutes, so no full transpose is needed) and leave
// in one vector store. Every fused load stays inside [data, data+len):
// a 32-byte load at base B is only emitted when the plan has a step at
// B+24, whose own 8-byte scalar load already reaches B+32.
//
// The pext kernel keeps the per-step vertical shape — gather one step's
// word from four keys, run the same PextNetwork the scalar soft path
// uses lifted onto 64-bit lanes (and/xor/or/shift rounds only, which is
// what lets one mask recipe serve both widths bit-identically).

/// The step's word from four keys, lane L holding key L's word.
inline __m256i gatherStep4(const char *D0, const char *D1, const char *D2,
                           const char *D3, uint32_t Off) {
  return _mm256_set_epi64x(static_cast<long long>(loadU64Le(D3 + Off)),
                           static_cast<long long>(loadU64Le(D2 + Off)),
                           static_cast<long long>(loadU64Le(D1 + Off)),
                           static_cast<long long>(loadU64Le(D0 + Off)));
}

/// Lane-wise rotl by a per-step (not per-lane) count; AVX2 has no
/// 64-bit rotate, so shift-shift-or it. srl with count 64 yields 0 by
/// the intrinsic's contract, making Shift == 0 fall out correctly.
inline __m256i rotl4(__m256i V, int Shift) {
  const __m128i L = _mm_cvtsi32_si128(Shift);
  const __m128i R = _mm_cvtsi32_si128(64 - Shift);
  return _mm256_or_si256(_mm256_sll_epi64(V, L), _mm256_srl_epi64(V, R));
}

/// Attach-once load schedule for the fused wide xor kernel: each quad
/// is a 32-byte load covering four stride-8 step offsets; a triple is
/// the same load placed one lane early (or late) with the dead lane
/// masked off; each pair a 16-byte load covering two; leftovers stay
/// 8-byte step loads.
struct WideXorSchedule {
  uint32_t QuadBase[MaxPrecomputedSteps];
  uint32_t TriLoBase[MaxPrecomputedSteps]; // steps in lanes 1-3
  uint32_t TriHiBase[MaxPrecomputedSteps]; // steps in lanes 0-2
  uint32_t PairBase[MaxPrecomputedSteps];
  uint32_t SingleOff[MaxPrecomputedSteps];
  size_t NQuads = 0;
  size_t NTriLo = 0;
  size_t NTriHi = 0;
  size_t NPairs = 0;
  size_t NSingles = 0;

  size_t loadsPerKey() const {
    return NQuads + NTriLo + NTriHi + NPairs + NSingles;
  }
};

WideXorSchedule compileWideXor(const HashPlan &Plan) {
  uint32_t Off[MaxPrecomputedSteps];
  const size_t M = Plan.Steps.size();
  for (size_t I = 0; I != M; ++I)
    Off[I] = Plan.Steps[I].Offset;
  std::sort(Off, Off + M);

  WideXorSchedule Sched;
  bool Used[MaxPrecomputedSteps] = {};
  const auto Find = [&](uint32_t Target) -> size_t {
    for (size_t I = 0; I != M; ++I)
      if (!Used[I] && Off[I] == Target)
        return I;
    return SIZE_MAX;
  };
  for (size_t I = 0; I != M; ++I) {
    if (Used[I])
      continue;
    Used[I] = true;
    const size_t A = Find(Off[I] + 8);
    if (A == SIZE_MAX) {
      Sched.SingleOff[Sched.NSingles++] = Off[I];
      continue;
    }
    const size_t B = Find(Off[I] + 16);
    const size_t C = B == SIZE_MAX ? SIZE_MAX : Find(Off[I] + 24);
    if (C != SIZE_MAX) {
      Used[A] = Used[B] = Used[C] = true;
      Sched.QuadBase[Sched.NQuads++] = Off[I];
      continue;
    }
    if (B != SIZE_MAX) {
      // Three stride-8 steps: one 32-byte load with a masked lane.
      // Base Off[I]-8 reads up to Off[I]+24, which the step at
      // Off[I]+16 already reaches; base Off[I] reads up to Off[I]+32
      // and needs the explicit length check.
      if (Off[I] >= 8) {
        Used[A] = Used[B] = true;
        Sched.TriLoBase[Sched.NTriLo++] = Off[I] - 8;
        continue;
      }
      if (Off[I] + 32 <= Plan.MaxKeyLen) {
        Used[A] = Used[B] = true;
        Sched.TriHiBase[Sched.NTriHi++] = Off[I];
        continue;
      }
    }
    Used[A] = true;
    Sched.PairBase[Sched.NPairs++] = Off[I];
  }
  return Sched;
}

void batchWideXor(const HashPlan &Plan, const std::string_view *Keys,
                  uint64_t *Out, size_t N) {
  const WideXorSchedule Sched = compileWideXor(Plan);
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    const char *D0 = Keys[I + 0].data();
    const char *D1 = Keys[I + 1].data();
    const char *D2 = Keys[I + 2].data();
    const char *D3 = Keys[I + 3].data();
    __m256i Q0 = _mm256_setzero_si256();
    __m256i Q1 = _mm256_setzero_si256();
    __m256i Q2 = _mm256_setzero_si256();
    __m256i Q3 = _mm256_setzero_si256();
    for (size_t Q = 0; Q != Sched.NQuads; ++Q) {
      const uint32_t B = Sched.QuadBase[Q];
      Q0 = _mm256_xor_si256(
          Q0, _mm256_loadu_si256(reinterpret_cast<const __m256i *>(D0 + B)));
      Q1 = _mm256_xor_si256(
          Q1, _mm256_loadu_si256(reinterpret_cast<const __m256i *>(D1 + B)));
      Q2 = _mm256_xor_si256(
          Q2, _mm256_loadu_si256(reinterpret_cast<const __m256i *>(D2 + B)));
      Q3 = _mm256_xor_si256(
          Q3, _mm256_loadu_si256(reinterpret_cast<const __m256i *>(D3 + B)));
    }
    for (size_t T = 0; T != Sched.NTriLo; ++T) {
      const uint32_t B = Sched.TriLoBase[T];
      const __m256i Keep = _mm256_set_epi64x(-1, -1, -1, 0);
      Q0 = _mm256_xor_si256(
          Q0, _mm256_and_si256(Keep, _mm256_loadu_si256(
                                         reinterpret_cast<const __m256i *>(
                                             D0 + B))));
      Q1 = _mm256_xor_si256(
          Q1, _mm256_and_si256(Keep, _mm256_loadu_si256(
                                         reinterpret_cast<const __m256i *>(
                                             D1 + B))));
      Q2 = _mm256_xor_si256(
          Q2, _mm256_and_si256(Keep, _mm256_loadu_si256(
                                         reinterpret_cast<const __m256i *>(
                                             D2 + B))));
      Q3 = _mm256_xor_si256(
          Q3, _mm256_and_si256(Keep, _mm256_loadu_si256(
                                         reinterpret_cast<const __m256i *>(
                                             D3 + B))));
    }
    for (size_t T = 0; T != Sched.NTriHi; ++T) {
      const uint32_t B = Sched.TriHiBase[T];
      const __m256i Keep = _mm256_set_epi64x(0, -1, -1, -1);
      Q0 = _mm256_xor_si256(
          Q0, _mm256_and_si256(Keep, _mm256_loadu_si256(
                                         reinterpret_cast<const __m256i *>(
                                             D0 + B))));
      Q1 = _mm256_xor_si256(
          Q1, _mm256_and_si256(Keep, _mm256_loadu_si256(
                                         reinterpret_cast<const __m256i *>(
                                             D1 + B))));
      Q2 = _mm256_xor_si256(
          Q2, _mm256_and_si256(Keep, _mm256_loadu_si256(
                                         reinterpret_cast<const __m256i *>(
                                             D2 + B))));
      Q3 = _mm256_xor_si256(
          Q3, _mm256_and_si256(Keep, _mm256_loadu_si256(
                                         reinterpret_cast<const __m256i *>(
                                             D3 + B))));
    }
    for (size_t P = 0; P != Sched.NPairs; ++P) {
      const uint32_t B = Sched.PairBase[P];
      Q0 = _mm256_xor_si256(
          Q0, _mm256_zextsi128_si256(
                  _mm_loadu_si128(reinterpret_cast<const __m128i *>(D0 + B))));
      Q1 = _mm256_xor_si256(
          Q1, _mm256_zextsi128_si256(
                  _mm_loadu_si128(reinterpret_cast<const __m128i *>(D1 + B))));
      Q2 = _mm256_xor_si256(
          Q2, _mm256_zextsi128_si256(
                  _mm_loadu_si128(reinterpret_cast<const __m128i *>(D2 + B))));
      Q3 = _mm256_xor_si256(
          Q3, _mm256_zextsi128_si256(
                  _mm_loadu_si128(reinterpret_cast<const __m128i *>(D3 + B))));
    }
    // Reduce all four keys' lanes at once: unpack pairs the lanes of
    // two keys so one xor folds halves, the cross-half permute folds
    // the rest, and the result vector is already in key order.
    const __m256i R = _mm256_xor_si256(_mm256_unpacklo_epi64(Q0, Q1),
                                       _mm256_unpackhi_epi64(Q0, Q1));
    const __m256i S = _mm256_xor_si256(_mm256_unpacklo_epi64(Q2, Q3),
                                       _mm256_unpackhi_epi64(Q2, Q3));
    __m256i H = _mm256_xor_si256(_mm256_permute2x128_si256(R, S, 0x20),
                                 _mm256_permute2x128_si256(R, S, 0x31));
    for (size_t S2 = 0; S2 != Sched.NSingles; ++S2)
      H = _mm256_xor_si256(H, gatherStep4(D0, D1, D2, D3,
                                          Sched.SingleOff[S2]));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Out + I), H);
  }
  for (; I != N; ++I)
    Out[I] = evalFixedXor<>(Plan, Keys[I].data(), Keys[I].size());
}

/// Attach-once step state for the wide pext kernel: the compaction
/// network's masks broadcast across lanes.
struct WidePextStep {
  uint32_t Off = 0;
  int Shift = 0;
  int Rounds = 0;
  __m256i Mask{};
  __m256i Move[6]{};
};

/// One step's network applied to four lanes at once.
inline __m256i applyNetwork4(const WidePextStep &W, __m256i V) {
  V = _mm256_and_si256(V, W.Mask);
  for (int R = 0; R != W.Rounds; ++R) {
    const __m128i Cnt = _mm_cvtsi32_si128(1 << R);
    const __m256i T = _mm256_and_si256(V, W.Move[R]);
    V = _mm256_or_si256(_mm256_xor_si256(V, T), _mm256_srl_epi64(T, Cnt));
  }
  return rotl4(V, W.Shift);
}

void batchWidePext(const HashPlan &Plan, const std::string_view *Keys,
                   uint64_t *Out, size_t N) {
  const PlanStep *Steps = Plan.Steps.data();
  const size_t M = Plan.Steps.size();
  WidePextStep W[MaxPrecomputedSteps];
  for (size_t S = 0; S != M; ++S) {
    const PextNetwork Net = PextNetwork::compile(Steps[S].Mask);
    W[S].Off = Steps[S].Offset;
    W[S].Shift = Steps[S].Shift;
    W[S].Rounds = Net.Rounds;
    W[S].Mask = _mm256_set1_epi64x(static_cast<long long>(Net.SourceMask));
    for (int R = 0; R != 6; ++R)
      W[S].Move[R] = _mm256_set1_epi64x(static_cast<long long>(Net.Move[R]));
  }
  size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    const char *D0 = Keys[I + 0].data();
    const char *D1 = Keys[I + 1].data();
    const char *D2 = Keys[I + 2].data();
    const char *D3 = Keys[I + 3].data();
    const char *D4 = Keys[I + 4].data();
    const char *D5 = Keys[I + 5].data();
    const char *D6 = Keys[I + 6].data();
    const char *D7 = Keys[I + 7].data();
    __m256i AccLo = _mm256_setzero_si256();
    __m256i AccHi = _mm256_setzero_si256();
    for (size_t S = 0; S != M; ++S) {
      const uint32_t Off = W[S].Off;
      AccLo = _mm256_xor_si256(
          AccLo, applyNetwork4(W[S], gatherStep4(D0, D1, D2, D3, Off)));
      AccHi = _mm256_xor_si256(
          AccHi, applyNetwork4(W[S], gatherStep4(D4, D5, D6, D7, Off)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Out + I), AccLo);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Out + I + 4), AccHi);
  }
  // The wide kernels only run at Native, where the scalar reference is
  // the hardware-pext evaluator; the network agrees with it bit for bit.
  for (; I != N; ++I)
    Out[I] = evalFixedPext<pextHw>(Plan, Keys[I].data(), Keys[I].size());
}
#endif // SEPE_EXEC_AVX2

// --- Kernel selection helpers ---------------------------------------------
//
// The attach-time "compilation": pick the fused instantiation matching
// the plan's step count (paper formats have 1-4 loads) or the generic
// runtime-count kernel beyond that.

EvalFnT selectFixedXorEval(size_t M) {
  switch (M) {
  case 1:
    return evalFixedXor<1>;
  case 2:
    return evalFixedXor<2>;
  case 3:
    return evalFixedXor<3>;
  case 4:
    return evalFixedXor<4>;
  default:
    return evalFixedXor<>;
  }
}

template <uint64_t (*Pext)(uint64_t, uint64_t)>
EvalFnT selectFixedPextEval(size_t M) {
  switch (M) {
  case 1:
    return evalFixedPext<Pext, 1>;
  case 2:
    return evalFixedPext<Pext, 2>;
  case 3:
    return evalFixedPext<Pext, 3>;
  case 4:
    return evalFixedPext<Pext, 4>;
  default:
    return evalFixedPext<Pext>;
  }
}

BatchFnT selectFixedXorBatch(size_t M) {
  switch (M) {
  case 1:
    return batchFixedXor<1>;
  case 2:
    return batchFixedXor<2>;
  case 3:
    return batchFixedXor<3>;
  case 4:
    return batchFixedXor<4>;
  default:
    return batchFixedXor<>;
  }
}

template <uint64_t (*Pext)(uint64_t, uint64_t)>
BatchFnT selectFixedPextBatch(size_t M) {
  switch (M) {
  case 1:
    return batchFixedPext<Pext, 1>;
  case 2:
    return batchFixedPext<Pext, 2>;
  case 3:
    return batchFixedPext<Pext, 3>;
  case 4:
    return batchFixedPext<Pext, 4>;
  default:
    return batchFixedPext<Pext>;
  }
}

BatchFnT selectFixedPextNetworkBatch(size_t M) {
  switch (M) {
  case 1:
    return batchFixedPextNetwork<1>;
  case 2:
    return batchFixedPextNetwork<2>;
  case 3:
    return batchFixedPextNetwork<3>;
  case 4:
    return batchFixedPextNetwork<4>;
  default:
    return batchFixedPextNetwork<>;
  }
}

// Forced-Scalar batches over fixed-length plans loop the same
// step-specialized single-key kernel the per-key operator uses, so the
// driver's scalar-vs-interleaved-vs-avx2 comparison isolates kernel
// width rather than step-loop overhead.

BatchFnT scalarFixedXorBatch(size_t M) {
  switch (M) {
  case 1:
    return batchViaSingle<evalFixedXor<1>>;
  case 2:
    return batchViaSingle<evalFixedXor<2>>;
  case 3:
    return batchViaSingle<evalFixedXor<3>>;
  case 4:
    return batchViaSingle<evalFixedXor<4>>;
  default:
    return batchViaSingle<evalFixedXor<>>;
  }
}

template <uint64_t (*Pext)(uint64_t, uint64_t)>
BatchFnT scalarFixedPextBatch(size_t M) {
  switch (M) {
  case 1:
    return batchViaSingle<evalFixedPext<Pext, 1>>;
  case 2:
    return batchViaSingle<evalFixedPext<Pext, 2>>;
  case 3:
    return batchViaSingle<evalFixedPext<Pext, 3>>;
  case 4:
    return batchViaSingle<evalFixedPext<Pext, 4>>;
  default:
    return batchViaSingle<evalFixedPext<Pext>>;
  }
}

} // namespace

const char *sepe::batchPathName(BatchPath Path) {
  switch (Path) {
  case BatchPath::Auto:
    return "auto";
  case BatchPath::Scalar:
    return "scalar";
  case BatchPath::Interleaved:
    return "interleaved";
  case BatchPath::Avx2:
    return "avx2";
  case BatchPath::Jit:
    return "jit";
  }
  unreachable("covered enum");
}

SynthesizedHash::EvalFn SynthesizedHash::selectEval(const HashPlan &Plan,
                                                    IsaLevel Isa) {
  if (Plan.FallbackToStl)
    return evalFallback;

  // pext hardware is available only at Native; AES hardware also at
  // NoBitExtract (the Jetson's situation).
  const bool HwPext = Isa == IsaLevel::Native;
  const bool Hw = Isa != IsaLevel::Portable;
  if (Plan.PartialLoad) {
    switch (Plan.Family) {
    case HashFamily::Naive:
    case HashFamily::OffXor:
      return evalPartialXor;
    case HashFamily::Pext:
      return HwPext ? evalPartialPext<pextHw> : evalPartialPext<pextSoft>;
    case HashFamily::Aes:
      return Hw ? evalPartialAes<aesEncRoundHw>
                : evalPartialAes<aesEncRoundSoft>;
    }
  }

  if (Plan.FixedLength) {
    switch (Plan.Family) {
    case HashFamily::Naive:
    case HashFamily::OffXor:
      return selectFixedXorEval(Plan.Steps.size());
    case HashFamily::Pext:
      return HwPext ? selectFixedPextEval<pextHw>(Plan.Steps.size())
                    : selectFixedPextEval<pextSoft>(Plan.Steps.size());
    case HashFamily::Aes:
#if defined(SEPE_HAVE_AESNI)
      if (Hw)
        return evalFixedAesNative;
#endif
      return Hw ? evalFixedAes<aesEncRoundHw>
                : evalFixedAes<aesEncRoundSoft>;
    }
  }

  switch (Plan.Family) {
  case HashFamily::Naive:
  case HashFamily::OffXor:
    return evalVarXor;
  case HashFamily::Pext:
    return HwPext ? evalVarPext<pextHw> : evalVarPext<pextSoft>;
  case HashFamily::Aes:
    return Hw ? evalVarAes<aesEncRoundHw> : evalVarAes<aesEncRoundSoft>;
  }
  unreachable("all plan shapes handled above");
}

SynthesizedHash::BatchChoice
SynthesizedHash::selectBatch(const HashPlan &Plan, IsaLevel Isa,
                             BatchPath Preferred) {
  // The degenerate shapes only have the per-key loop; any preference
  // resolves to Scalar.
  if (Plan.FallbackToStl)
    return {batchViaSingle<evalFallback>, BatchPath::Scalar};

  const bool HwPext = Isa == IsaLevel::Native;
  const bool Hw = Isa != IsaLevel::Portable;
  if (Plan.PartialLoad) {
    switch (Plan.Family) {
    case HashFamily::Naive:
    case HashFamily::OffXor:
      return {batchViaSingle<evalPartialXor>, BatchPath::Scalar};
    case HashFamily::Pext:
      return {HwPext ? batchViaSingle<evalPartialPext<pextHw>>
                     : batchViaSingle<evalPartialPext<pextSoft>>,
              BatchPath::Scalar};
    case HashFamily::Aes:
      return {Hw ? batchViaSingle<evalPartialAes<aesEncRoundHw>>
                 : batchViaSingle<evalPartialAes<aesEncRoundSoft>>,
              BatchPath::Scalar};
    }
  }

  if (Plan.FixedLength) {
    const size_t M = Plan.Steps.size();
    if (Preferred == BatchPath::Scalar) {
      switch (Plan.Family) {
      case HashFamily::Naive:
      case HashFamily::OffXor:
        return {scalarFixedXorBatch(M), BatchPath::Scalar};
      case HashFamily::Pext:
        return {HwPext ? scalarFixedPextBatch<pextHw>(M)
                       : scalarFixedPextBatch<pextSoft>(M),
                BatchPath::Scalar};
      case HashFamily::Aes:
#if defined(SEPE_HAVE_AESNI)
        if (Hw)
          return {batchViaSingle<evalFixedAesNative>, BatchPath::Scalar};
#endif
        return {Hw ? batchViaSingle<evalFixedAes<aesEncRoundHw>>
                   : batchViaSingle<evalFixedAes<aesEncRoundSoft>>,
                BatchPath::Scalar};
      }
    }

#if defined(SEPE_EXEC_AVX2)
    // The wide rung: compiled in, requested (Auto or Avx2), ISA ceiling
    // at Native, host CPU confirms AVX2 at runtime, and the plan's step
    // state fits the precomputed tables. Under Auto the rung only takes
    // plans it measurably wins: xor plans whose stride-8 offset runs
    // fuse into fewer loads (the kernels are load-bound, so a wide
    // combine alone merely ties the interleaved rung), and never Pext —
    // one-cycle hardware pext beats the 5-6-round lane network about
    // 3x, so the wide network is kept for the forced-path ladder and
    // for hosts where it is the only vector option. Aes stays on the
    // interleaved AES-NI kernel — its sequential 128-bit rounds don't
    // widen onto 64-bit lanes.
    if ((Preferred == BatchPath::Auto || Preferred == BatchPath::Avx2) &&
        Isa == IsaLevel::Native && M <= MaxPrecomputedSteps &&
        avx2BatchAvailable()) {
      switch (Plan.Family) {
      case HashFamily::Naive:
      case HashFamily::OffXor:
        // A full quad is what amortizes the kernel's shuffle-reduce
        // tree; plans that only fuse pairs/triples stay interleaved.
        if (Preferred == BatchPath::Avx2 ||
            compileWideXor(Plan).NQuads != 0)
          return {batchWideXor, BatchPath::Avx2};
        break;
      case HashFamily::Pext:
        if (Preferred == BatchPath::Avx2)
          return {batchWidePext, BatchPath::Avx2};
        break;
      case HashFamily::Aes:
        break;
      }
    }
#endif

    // The interleaved rung (also where an unhonorable Avx2 request
    // lands). The soft-pext arm runs the compaction-network kernel so
    // Portable/NoBitExtract batches skip the bit-at-a-time loop.
    switch (Plan.Family) {
    case HashFamily::Naive:
    case HashFamily::OffXor:
      return {selectFixedXorBatch(M), BatchPath::Interleaved};
    case HashFamily::Pext:
      if (HwPext)
        return {selectFixedPextBatch<pextHw>(M), BatchPath::Interleaved};
      return {M <= MaxPrecomputedSteps ? selectFixedPextNetworkBatch(M)
                                       : selectFixedPextBatch<pextSoft>(M),
              BatchPath::Interleaved};
    case HashFamily::Aes:
#if defined(SEPE_HAVE_AESNI)
      if (Hw)
        return {batchFixedAesNative, BatchPath::Interleaved};
#endif
      return {Hw ? batchViaSingle<evalFixedAes<aesEncRoundHw>>
                 : batchViaSingle<evalFixedAes<aesEncRoundSoft>>,
              BatchPath::Scalar};
    }
  }

  switch (Plan.Family) {
  case HashFamily::Naive:
  case HashFamily::OffXor:
    return {batchViaSingle<evalVarXor>, BatchPath::Scalar};
  case HashFamily::Pext:
    return {HwPext ? batchViaSingle<evalVarPext<pextHw>>
                   : batchViaSingle<evalVarPext<pextSoft>>,
            BatchPath::Scalar};
  case HashFamily::Aes:
    return {Hw ? batchViaSingle<evalVarAes<aesEncRoundHw>>
               : batchViaSingle<evalVarAes<aesEncRoundSoft>>,
            BatchPath::Scalar};
  }
  unreachable("all plan shapes handled above");
}

namespace {

/// Fused scalar lane of the guarded fixed-xor kernel: hashes and guards
/// one key, returning true when admitted (Out written) and false when
/// rejected (Out untouched). Shared by the 4-wide loop's epilogue and
/// its rare mixed-length groups.
template <size_t NSteps = 0>
bool guardedFixedXorOne(const HashPlan &Plan, const BatchGuard &G,
                        std::string_view Key, uint64_t *Out) {
  if (Key.size() != G.KeyLen)
    return false;
  const PlanStep *Steps = Plan.Steps.data();
  const size_t M = NSteps != 0 ? NSteps : Plan.Steps.size();
  const char *D = Key.data();
  uint64_t Hash = 0, Bad = 0;
  for (size_t S = 0; S != M; ++S) {
    const uint64_t W = loadU64Le(D + Steps[S].Offset);
    Hash ^= W;
    Bad |= (W & G.StepMasks[S]) ^ G.StepValues[S];
  }
  for (const BatchGuard::Check &C : G.Extra)
    Bad |= (loadU64Le(D + C.Offset) & C.Mask) ^ C.Value;
  if (Bad != 0)
    return false;
  *Out = Hash;
  return true;
}

/// Guarded fixed-xor batch kernel: the interleaved 4-wide loop of
/// batchFixedXor with the membership compare folded onto each loaded
/// word. Admitted keys land in Out at their own index; rejected key
/// indices append to MissIdx and their Out slots are non-contractual
/// (the caller's fallback lane overwrites them).
///
/// The hot loop is branch-free: per-key badness accumulates into a
/// side array and one chunk-level OR, so on a clean stream the only
/// guard cost is the AND/XOR/OR pair on each word the hash loads
/// anyway plus one predictable branch per chunk. Key lengths are swept
/// branchlessly per chunk before any plan-offset load happens — a
/// wrong-length key must not be dereferenced at the plan's offsets,
/// and a chunk containing one (rare under drift, impossible on a
/// steady stream) falls back to the per-key lane.
template <size_t NSteps = 0>
size_t guardedFixedXorBatch(const HashPlan &Plan, const BatchGuard &G,
                            const std::string_view *Keys, uint64_t *Out,
                            size_t N, uint32_t *MissIdx) {
  const PlanStep *Steps = Plan.Steps.data();
  const size_t M = NSteps != 0 ? NSteps : Plan.Steps.size();
  const uint64_t *GM = G.StepMasks.data();
  const uint64_t *GV = G.StepValues.data();
  const BatchGuard::Check *Extra = G.Extra.data();
  const size_t NumExtra = G.Extra.size();
  const size_t Len = G.KeyLen;
  constexpr size_t Chunk = 64;
  uint64_t Bad[Chunk];
  size_t Misses = 0;
  for (size_t Base = 0; Base < N; Base += Chunk) {
    const size_t Count = N - Base < Chunk ? N - Base : Chunk;
    const std::string_view *K = Keys + Base;
    uint64_t LenBad = 0;
    for (size_t I = 0; I != Count; ++I)
      LenBad |= K[I].size() ^ Len;
    if (LenBad != 0) {
      for (size_t I = 0; I != Count; ++I)
        if (!guardedFixedXorOne<NSteps>(Plan, G, K[I], Out + Base + I))
          MissIdx[Misses++] = static_cast<uint32_t>(Base + I);
      continue;
    }
    uint64_t AnyBad = 0;
    size_t I = 0;
    for (; I + 4 <= Count; I += 4) {
      const char *D0 = K[I + 0].data();
      const char *D1 = K[I + 1].data();
      const char *D2 = K[I + 2].data();
      const char *D3 = K[I + 3].data();
      uint64_t H0 = 0, H1 = 0, H2 = 0, H3 = 0;
      uint64_t B0 = 0, B1 = 0, B2 = 0, B3 = 0;
      for (size_t S = 0; S != M; ++S) {
        const uint32_t Off = Steps[S].Offset;
        const uint64_t Ma = GM[S], Va = GV[S];
        uint64_t W;
        W = loadU64Le(D0 + Off), H0 ^= W, B0 |= (W & Ma) ^ Va;
        W = loadU64Le(D1 + Off), H1 ^= W, B1 |= (W & Ma) ^ Va;
        W = loadU64Le(D2 + Off), H2 ^= W, B2 |= (W & Ma) ^ Va;
        W = loadU64Le(D3 + Off), H3 ^= W, B3 |= (W & Ma) ^ Va;
      }
      for (size_t E = 0; E != NumExtra; ++E) {
        const uint32_t Off = Extra[E].Offset;
        const uint64_t Ma = Extra[E].Mask, Va = Extra[E].Value;
        B0 |= (loadU64Le(D0 + Off) & Ma) ^ Va;
        B1 |= (loadU64Le(D1 + Off) & Ma) ^ Va;
        B2 |= (loadU64Le(D2 + Off) & Ma) ^ Va;
        B3 |= (loadU64Le(D3 + Off) & Ma) ^ Va;
      }
      Out[Base + I + 0] = H0;
      Out[Base + I + 1] = H1;
      Out[Base + I + 2] = H2;
      Out[Base + I + 3] = H3;
      Bad[I + 0] = B0;
      Bad[I + 1] = B1;
      Bad[I + 2] = B2;
      Bad[I + 3] = B3;
      AnyBad |= B0 | B1 | B2 | B3;
    }
    for (; I != Count; ++I) {
      const char *D = K[I].data();
      uint64_t H = 0, B = 0;
      for (size_t S = 0; S != M; ++S) {
        const uint64_t W = loadU64Le(D + Steps[S].Offset);
        H ^= W;
        B |= (W & GM[S]) ^ GV[S];
      }
      for (size_t E = 0; E != NumExtra; ++E)
        B |= (loadU64Le(D + Extra[E].Offset) & Extra[E].Mask) ^
             Extra[E].Value;
      Out[Base + I] = H;
      Bad[I] = B;
      AnyBad |= B;
    }
    if (AnyBad != 0)
      for (size_t J = 0; J != Count; ++J)
        if (Bad[J] != 0)
          MissIdx[Misses++] = static_cast<uint32_t>(Base + J);
  }
  return Misses;
}

using GuardedBatchFnT = size_t (*)(const HashPlan &, const BatchGuard &,
                                   const std::string_view *, uint64_t *,
                                   size_t, uint32_t *);

GuardedBatchFnT selectGuardedFixedXorBatch(size_t M) {
  switch (M) {
  case 1:
    return guardedFixedXorBatch<1>;
  case 2:
    return guardedFixedXorBatch<2>;
  case 3:
    return guardedFixedXorBatch<3>;
  case 4:
    return guardedFixedXorBatch<4>;
  default:
    return guardedFixedXorBatch<>;
  }
}

} // namespace

BatchGuard SynthesizedHash::compileGuard(const KeyPattern &Guard) const {
  BatchGuard G;
  if (!Plan || Plan->FallbackToStl || Plan->PartialLoad || !Plan->FixedLength)
    return G;
  if (Plan->Family != HashFamily::Naive && Plan->Family != HashFamily::OffXor)
    return G;
  if (!Guard.isFixedLength() || Guard.maxLength() < 8)
    return G;
  const size_t Len = Guard.maxLength();
  for (const PlanStep &S : Plan->Steps)
    if (S.Offset + 8 > Len)
      return G; // Plan loads outside the guarded length; stay two-pass.

  // Express the guard's constant bits on the windows the kernel loads.
  const auto PackWindow = [&](size_t Offset, uint64_t &Mask,
                              uint64_t &Value) {
    for (size_t I = 0; I != 8; ++I) {
      const BytePattern &B = Guard.byteAt(Offset + I);
      Mask |= uint64_t{B.constMask()} << (8 * I);
      Value |= uint64_t{B.constValue()} << (8 * I);
    }
  };
  std::vector<bool> Covered(Len, false);
  for (const PlanStep &S : Plan->Steps) {
    uint64_t Mask = 0, Value = 0;
    PackWindow(S.Offset, Mask, Value);
    G.StepMasks.push_back(Mask);
    G.StepValues.push_back(Value);
    for (size_t I = 0; I != 8; ++I)
      Covered[S.Offset + I] = true;
  }
  // Constant positions the hash never loads (e.g. the URL formats'
  // literal prefix, which the synthesizer's skip table elides) get
  // standalone windows, clamped so they never read past the key.
  for (size_t P = 0; P != Len; ++P) {
    if (Covered[P] || Guard.byteAt(P).constMask() == 0)
      continue;
    const size_t Offset = P < Len - 8 ? P : Len - 8;
    BatchGuard::Check C;
    C.Offset = static_cast<uint32_t>(Offset);
    PackWindow(Offset, C.Mask, C.Value);
    G.Extra.push_back(C);
    for (size_t I = 0; I != 8; ++I)
      Covered[Offset + I] = true;
  }
  G.KeyLen = Len;
  G.Fused = true;
  return G;
}

size_t SynthesizedHash::hashBatchGuarded(const KeyPattern &Guard,
                                         const BatchGuard &Compiled,
                                         const std::string_view *Keys,
                                         uint64_t *Out, size_t N,
                                         uint32_t *MissIdx) const {
  assert(Plan && "hashing with an empty SynthesizedHash");
  if (!Compiled.Fused)
    return hashBatchGuarded(Guard, Keys, Out, N, MissIdx);
  assert(Compiled.StepMasks.size() == Plan->Steps.size() &&
         "guard compiled against a different plan");
  return selectGuardedFixedXorBatch(Plan->Steps.size())(*Plan, Compiled, Keys,
                                                        Out, N, MissIdx);
}

size_t SynthesizedHash::hashBatchGuarded(const KeyPattern &Guard,
                                         const std::string_view *Keys,
                                         uint64_t *Out, size_t N,
                                         uint32_t *MissIdx) const {
  assert(Plan && "hashing with an empty SynthesizedHash");
  // Stack-block size mirrors FlatIndexMap::insertBatch: big enough to
  // amortize the per-call dispatch, small enough to stay in L1.
  constexpr size_t Block = 256;
  uint8_t Admit[Block];
  std::string_view Pass[Block];
  uint64_t PassOut[Block];
  uint32_t PassIdx[Block];
  size_t Misses = 0;
  for (size_t Base = 0; Base < N; Base += Block) {
    const size_t Count = N - Base < Block ? N - Base : Block;
    const size_t Admitted = Guard.matchesBatch(Keys + Base, Admit, Count);
    if (Admitted == Count) {
      // Whole block in-format: hash in place, no compaction copy.
      hashBatch(Keys + Base, Out + Base, Count);
      continue;
    }
    size_t P = 0;
    for (size_t I = 0; I != Count; ++I) {
      if (Admit[I]) {
        Pass[P] = Keys[Base + I];
        PassIdx[P] = static_cast<uint32_t>(Base + I);
        ++P;
      } else {
        MissIdx[Misses++] = static_cast<uint32_t>(Base + I);
      }
    }
    if (P != 0) {
      hashBatch(Pass, PassOut, P);
      for (size_t I = 0; I != P; ++I)
        Out[PassIdx[I]] = PassOut[I];
    }
  }
  return Misses;
}

SynthesizedHash::SynthesizedHash(std::shared_ptr<const HashPlan> Plan,
                                 IsaLevel Isa, BatchPath Preferred)
    : Plan(std::move(Plan)) {
  assert(this->Plan && "SynthesizedHash requires a plan");
  Eval = selectEval(*this->Plan, Isa);
  // A Jit preference resolves through the interpreted ladder first (as
  // if Auto) so an unhonorable request lands on the same rung Auto
  // would pick; the takeover below then upgrades to compiled code when
  // host and shape allow.
  const BatchPath Want =
      Preferred == BatchPath::Jit ? BatchPath::Auto : Preferred;
  const BatchChoice Choice = selectBatch(*this->Plan, Isa, Want);
  Batch = Choice.Fn;
  Resolved = Choice.Path;
  // The JIT rung. Gated on the request (Auto or an explicit Jit pin —
  // a forced interpreted rung must stay interpreted, the property
  // tests use it as the reference), the IsaLevel ceiling, the runtime
  // cpuid/env gate, and the plan shape. Under Auto the AVX2 quad-xor
  // wins are kept (the wide kernel's fused loads beat four scalar
  // lanes); an explicit Jit pin overrides them. compileJitProgram can
  // still refuse (mmap denied), in which case the interpreted choice
  // above simply stands — the fallback lane is always attached first.
  if ((Preferred == BatchPath::Auto || Preferred == BatchPath::Jit) &&
      Isa == IsaLevel::Native && jitAvailable() &&
      jitSupportsPlan(*this->Plan) &&
      (Preferred == BatchPath::Jit || Resolved != BatchPath::Avx2)) {
    if (std::shared_ptr<const JitProgram> Prog =
            compileJitProgram(*this->Plan)) {
      Jit = std::move(Prog);
      Eval = Jit->eval();
      Batch = Jit->batch();
      Resolved = BatchPath::Jit;
      SEPE_TRACE_INSTANT(JitRegister, 0, Jit->codeBytes());
    }
  }
#if defined(SEPE_TELEMETRY)
  // Attach-time kernel selection: how often each rung wins, and how
  // often a non-Auto request could not be honored as asked (resolved
  // downward by plan shape, ISA ceiling, or missing host support).
  SEPE_COUNT("executor.attach.total");
  switch (Resolved) {
  case BatchPath::Auto:
    break; // Resolved is never Auto.
  case BatchPath::Scalar:
    SEPE_COUNT("executor.attach.batch_path.scalar");
    break;
  case BatchPath::Interleaved:
    SEPE_COUNT("executor.attach.batch_path.interleaved");
    break;
  case BatchPath::Avx2:
    SEPE_COUNT("executor.attach.batch_path.avx2");
    break;
  case BatchPath::Jit:
    SEPE_COUNT("executor.attach.batch_path.jit");
    break;
  }
  if (Preferred != BatchPath::Auto && Preferred != Resolved)
    SEPE_COUNT("executor.attach.request_downgraded");
#endif
}
