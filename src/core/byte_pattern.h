//===- core/byte_pattern.h - Quad abstraction of one key byte ---*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstraction of a single key byte as four quad-lattice elements,
/// packed as a (constant-bit mask, constant-bit value) pair. Bit-pair
/// granularity is the paper's deliberate design point: it is fine enough
/// to capture the constant prefixes of ASCII digits (four constant bits)
/// and letters (two constant bits), and coarse enough to keep synthesis
/// linear (Section 3.1, "Rationale").
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CORE_BYTE_PATTERN_H
#define SEPE_CORE_BYTE_PATTERN_H

#include "core/quad.h"

#include <cstdint>
#include <string>

namespace sepe {

/// The join of the quad abstractions of a set of bytes. Invariant:
/// ConstMask covers whole bit pairs (each pair of mask bits is 00 or 11)
/// and ConstValue is zero outside ConstMask.
class BytePattern {
public:
  /// Constructs the unconstrained byte (all four quads top).
  constexpr BytePattern() : ConstMask(0), ConstValue(0) {}

  /// Constructs the abstraction of the single byte \p Value (all four
  /// quads concrete).
  static constexpr BytePattern fromByte(uint8_t Value) {
    return BytePattern(0xFF, Value);
  }

  /// Constructs the fully unconstrained byte.
  static constexpr BytePattern top() { return BytePattern(); }

  /// Builds a pattern from explicit mask/value; \p Mask must cover whole
  /// bit pairs.
  static constexpr BytePattern fromMaskValue(uint8_t Mask, uint8_t Value) {
    assert(isPairMask(Mask) && "mask must have bit-pair granularity");
    assert((Value & ~Mask) == 0 && "value bits outside the mask");
    return BytePattern(Mask, Value);
  }

  /// Bits that hold the same value in every byte this pattern abstracts.
  constexpr uint8_t constMask() const { return ConstMask; }

  /// The value of the constant bits (zero outside constMask()).
  constexpr uint8_t constValue() const { return ConstValue; }

  /// Bits free to vary; the complement of constMask().
  constexpr uint8_t freeMask() const { return static_cast<uint8_t>(~ConstMask); }

  /// True when all four quads are concrete: the byte is a constant.
  constexpr bool isConstant() const { return ConstMask == 0xFF; }

  /// True when no quad is concrete.
  constexpr bool isTop() const { return ConstMask == 0; }

  /// Number of constant bits (always even).
  constexpr unsigned constBitCount() const {
    return static_cast<unsigned>(__builtin_popcount(ConstMask));
  }

  /// The quad at index \p I, where index 0 is the most significant bit
  /// pair (matching the left-to-right rendering in the paper's figures).
  constexpr Quad quadAt(unsigned I) const {
    assert(I < 4 && "a byte holds four quads");
    const unsigned Shift = 2 * (3 - I);
    if (((ConstMask >> Shift) & 0x3) != 0x3)
      return Quad::top();
    return Quad::pair(static_cast<uint8_t>((ConstValue >> Shift) & 0x3));
  }

  /// True when \p Byte is admitted by this pattern.
  constexpr bool matches(uint8_t Byte) const {
    return (Byte & ConstMask) == ConstValue;
  }

  /// Pointwise quad join (the least upper bound in the product lattice).
  friend constexpr BytePattern join(BytePattern A, BytePattern B) {
    // A bit pair stays constant iff it is constant on both sides and the
    // values agree. Compute "values agree" at pair granularity.
    const uint8_t Disagree = static_cast<uint8_t>(A.ConstValue ^ B.ConstValue);
    uint8_t Mask = static_cast<uint8_t>(A.ConstMask & B.ConstMask);
    for (unsigned Shift = 0; Shift < 8; Shift += 2) {
      const uint8_t PairMask = static_cast<uint8_t>(0x3 << Shift);
      if ((Mask & PairMask) != PairMask || (Disagree & PairMask) != 0)
        Mask = static_cast<uint8_t>(Mask & ~PairMask);
    }
    return BytePattern(Mask, static_cast<uint8_t>(A.ConstValue & Mask));
  }

  friend constexpr bool operator==(BytePattern A, BytePattern B) {
    return A.ConstMask == B.ConstMask && A.ConstValue == B.ConstValue;
  }

  /// Renders the four quads left to right, e.g. "0100TT01".
  std::string str() const {
    std::string Out;
    for (unsigned I = 0; I != 4; ++I)
      Out += quadAt(I).str();
    return Out;
  }

private:
  constexpr BytePattern(uint8_t Mask, uint8_t Value)
      : ConstMask(Mask), ConstValue(Value) {}

  static constexpr bool isPairMask(uint8_t Mask) {
    for (unsigned Shift = 0; Shift < 8; Shift += 2) {
      const uint8_t Pair = (Mask >> Shift) & 0x3;
      if (Pair == 0x1 || Pair == 0x2)
        return false;
    }
    return true;
  }

  uint8_t ConstMask;
  uint8_t ConstValue;
};

} // namespace sepe

#endif // SEPE_CORE_BYTE_PATTERN_H
