//===- core/quad.h - The quad semilattice of Definition 3.2 -----*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The quad-semilattice of the paper's Definition 3.2: the set
/// {00, 01, 10, 11} of bit pairs plus a top element, ordered so that the
/// join of two distinct concrete pairs is top. Folding this join over a
/// set of example keys identifies which bit pairs are constant across all
/// keys (Section 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CORE_QUAD_H
#define SEPE_CORE_QUAD_H

#include <cassert>
#include <cstdint>
#include <string>

namespace sepe {

/// One element of the quad semilattice: a concrete bit pair 00/01/10/11 or
/// the top element.
class Quad {
public:
  /// Sentinel encoding for the top element.
  static constexpr uint8_t TopValue = 4;

  /// Constructs the top element.
  constexpr Quad() : Encoding(TopValue) {}

  /// Constructs a concrete bit pair from a value in [0, 3].
  static constexpr Quad pair(uint8_t Bits) {
    assert(Bits < 4 && "a bit pair holds two bits");
    return Quad(Bits);
  }

  /// Constructs the top element.
  static constexpr Quad top() { return Quad(); }

  constexpr bool isTop() const { return Encoding == TopValue; }

  /// The concrete bit pair; only valid when !isTop().
  constexpr uint8_t bits() const {
    assert(!isTop() && "top has no concrete bits");
    return Encoding;
  }

  /// The least upper bound of Definition 3.2: equal concrete pairs join to
  /// themselves, everything else joins to top.
  friend constexpr Quad join(Quad A, Quad B) {
    if (A.Encoding == B.Encoding)
      return A;
    return Quad::top();
  }

  /// The partial order induced by the join: A <= B iff join(A, B) == B.
  friend constexpr bool operator<=(Quad A, Quad B) {
    return join(A, B).Encoding == B.Encoding;
  }

  friend constexpr bool operator==(Quad A, Quad B) {
    return A.Encoding == B.Encoding;
  }

  /// Renders the quad as two binary digits, or "TT" for top, matching the
  /// figures in the paper.
  std::string str() const {
    if (isTop())
      return "TT";
    std::string Out(2, '0');
    Out[0] = static_cast<char>('0' + ((Encoding >> 1) & 1));
    Out[1] = static_cast<char>('0' + (Encoding & 1));
    return Out;
  }

private:
  explicit constexpr Quad(uint8_t Encoding) : Encoding(Encoding) {}

  uint8_t Encoding;
};

} // namespace sepe

#endif // SEPE_CORE_QUAD_H
