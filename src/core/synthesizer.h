//===- core/synthesizer.h - KeyPattern -> HashPlan --------------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The code generator of Section 3.2 (Figure 7): turns a KeyPattern into
/// a HashPlan for one of the four families. The pipeline is
///
///   parseRanges -> ignoreConstantSubsequences (load offsets / skip
///   table) -> calculateMasks + removeConstBits (pext masks and shifts)
///   -> unrollSequences (straight-line plan for fixed-length keys).
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CORE_SYNTHESIZER_H
#define SEPE_CORE_SYNTHESIZER_H

#include "core/key_pattern.h"
#include "core/plan.h"
#include "support/expected.h"

#include <array>

namespace sepe {

/// Tunables for synthesis.
struct SynthesisOptions {
  /// Specialize keys shorter than one machine word instead of falling
  /// back to the standard hash (used by the RQ7 worst-case study; the
  /// paper's tool never does this by default, see footnote 5).
  bool AllowShortKeys = false;

  /// Pext only: shift the last extracted chunk so the hash uses the full
  /// 64-bit range (Step 3 in Figure 12). Disabling keeps all chunks
  /// packed at the low end.
  bool SpreadToTopBits = true;
};

/// Synthesizes a plan of the given \p Family for \p Pattern. Fails when
/// the pattern is empty or entirely constant (a format with a single
/// member needs no hash).
Expected<HashPlan> synthesize(const KeyPattern &Pattern, HashFamily Family,
                              const SynthesisOptions &Options = {});

/// All four families for one pattern, in enum order.
Expected<std::array<HashPlan, 4>>
synthesizeAllFamilies(const KeyPattern &Pattern,
                      const SynthesisOptions &Options = {});

} // namespace sepe

#endif // SEPE_CORE_SYNTHESIZER_H
