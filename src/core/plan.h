//===- core/plan.h - IR for synthesized hash functions ---------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// HashPlan is the intermediate representation between synthesis and the
/// two back ends: the runtime executor (core/executor.h) and the C++
/// source emitter (core/codegen.h). A plan is a straight-line recipe:
/// load words at fixed offsets, optionally compress their free bits with
/// pext, shift, and combine (xor or AES rounds). Variable-length plans
/// carry a skip table instead (Figure 8).
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CORE_PLAN_H
#define SEPE_CORE_PLAN_H

#include "core/analysis.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sepe {

/// The four families of Section 4, in increasing order of constraint use
/// (Figure 3).
enum class HashFamily {
  /// Xor of every 8-byte word; exploits fixed length only.
  Naive,
  /// Xor of only the words containing non-constant bytes.
  OffXor,
  /// Like OffXor but combined with AES encode rounds.
  Aes,
  /// Like OffXor but with constant bits removed via pext.
  Pext,
};

/// Human-readable family name ("Naive", "OffXor", "Aes", "Pext").
const char *familyName(HashFamily Family);

/// One straight-line step of a fixed-length plan.
struct PlanStep {
  /// Byte offset of the 8-byte load.
  uint32_t Offset = 0;
  /// pext mask; ~0 means "no extraction" (Naive/OffXor/Aes).
  uint64_t Mask = ~uint64_t{0};
  /// Left shift applied to the extracted value before combining.
  uint8_t Shift = 0;

  friend bool operator==(const PlanStep &A, const PlanStep &B) {
    return A.Offset == B.Offset && A.Mask == B.Mask && A.Shift == B.Shift;
  }
};

/// A complete synthesized hash function in IR form.
struct HashPlan {
  HashFamily Family = HashFamily::OffXor;

  /// Key length bounds the plan was synthesized for.
  uint32_t MinKeyLen = 0;
  uint32_t MaxKeyLen = 0;
  bool FixedLength = true;

  /// True when SEPE declines to specialize (keys shorter than one machine
  /// word, footnote 5 of the paper) and the executor defers to the
  /// standard-library hash.
  bool FallbackToStl = false;

  /// True when the fixed-length key is shorter than 8 bytes but
  /// specialization was forced (SynthesisOptions::AllowShortKeys); the
  /// single step then loads only MaxKeyLen bytes.
  bool PartialLoad = false;

  /// Straight-line steps (fixed-length path).
  std::vector<PlanStep> Steps;

  /// Skip table (variable-length path); empty for fixed-length plans.
  SkipTable Skip;

  /// Total number of free bits in the format (diagnostics; Section 4.2's
  /// "relevant bits").
  unsigned FreeBits = 0;

  /// True when this plan provably maps distinct format keys to distinct
  /// 64-bit values (Section 4.2: "Pext always generates a bijection for
  /// key types that have equal or less than 64 relevant bits"). Only
  /// Pext plans whose chunks occupy disjoint bit ranges qualify.
  bool Bijective = false;

  bool usesSkipTable() const { return !FixedLength; }

  /// Rough byte-size estimate of the code this plan generates; used by
  /// the synthesis-complexity experiment (RQ6).
  size_t codeSizeEstimate() const;

  /// Multi-line textual dump for debugging and golden tests.
  std::string str() const;
};

} // namespace sepe

#endif // SEPE_CORE_PLAN_H
