//===- core/inference.cpp - Pattern inference from key examples ----------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/inference.h"

#include "support/telemetry.h"

#include <istream>

using namespace sepe;

void PatternBuilder::addKey(std::string_view Key) {
  if (Count == 0) {
    MinLen = MaxLen = Key.size();
    Bytes.reserve(Key.size());
    for (char C : Key)
      Bytes.push_back(BytePattern::fromByte(static_cast<uint8_t>(C)));
    Count = 1;
    return;
  }

  // Positions beyond a key's length contribute top (Definition 3.2's
  // treatment of missing bit pairs), so widening the pattern tops the new
  // tail for every previously seen shorter key and vice versa.
  if (Key.size() > MaxLen) {
    Bytes.resize(Key.size(), BytePattern::top());
    MaxLen = Key.size();
  }
  MinLen = std::min(MinLen, Key.size());

  for (size_t I = 0; I != Bytes.size(); ++I) {
    const BytePattern Incoming =
        I < Key.size() ? BytePattern::fromByte(static_cast<uint8_t>(Key[I]))
                       : BytePattern::top();
    Bytes[I] = join(Bytes[I], Incoming);
  }
  ++Count;
}

KeyPattern PatternBuilder::pattern() const {
  if (Count == 0)
    return KeyPattern();
  if (MinLen == MaxLen)
    return KeyPattern::fixed(Bytes);
  return KeyPattern::variable(Bytes, MinLen);
}

KeyPattern sepe::inferPattern(const std::vector<std::string> &Keys) {
  SEPE_SPAN("synthesis.infer_join");
  SEPE_COUNT_N("synthesis.infer_join.keys", Keys.size());
  PatternBuilder Builder;
  for (const std::string &Key : Keys)
    Builder.addKey(Key);
  return Builder.pattern();
}

KeyPattern sepe::inferPatternFromStream(std::istream &In) {
  SEPE_SPAN("synthesis.infer_join");
  PatternBuilder Builder;
  std::string Line;
  while (std::getline(In, Line)) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty())
      continue;
    Builder.addKey(Line);
  }
  return Builder.pattern();
}
