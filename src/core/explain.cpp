//===- core/explain.cpp - Plan and JIT introspection ---------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
//
// Three renderers over one shared step decomposition. The annotations
// mirror what the executor actually does per family (core/executor.cpp):
// Naive/OffXor xor whole words, Pext compresses each word with pext and
// rotates it into place, Aes feeds word pairs through aesenc rounds.
// Costs are the same unit the synthesis-complexity experiment uses
// (rough op counts per step), so `--explain` and RQ6 agree on what a
// plan "costs".
//
//===----------------------------------------------------------------------===//

#include "core/explain.h"

#include "core/jit.h"

#include <bit>
#include <cinttypes>
#include <cstdio>

using namespace sepe;

namespace {

std::string hex64(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%016" PRIx64, V);
  return Buf;
}

bool hasMask(const PlanStep &S) { return S.Mask != ~uint64_t{0}; }

/// Rough op count for one fixed-length step: the load, the optional
/// pext, the optional rotate, and the combine.
unsigned stepCostOps(const HashPlan &Plan, const PlanStep &S) {
  unsigned Ops = 1; // load
  if (hasMask(S))
    ++Ops; // pext
  if (S.Shift != 0)
    ++Ops; // rotl
  // Combine: xor per step, or half an aesenc (one round eats two words).
  Ops += Plan.Family == HashFamily::Aes ? 1 : 1;
  return Ops;
}

/// One line describing how the family folds loaded words into the hash.
const char *combineDescription(const HashPlan &Plan) {
  switch (Plan.Family) {
  case HashFamily::Naive:
    return "xor of every 8-byte word";
  case HashFamily::OffXor:
    return "xor of words holding non-constant bytes";
  case HashFamily::Aes:
    return "aesenc rounds over word pairs (odd last word replicated)";
  case HashFamily::Pext:
    return "xor of pext-compressed words rotated into place";
  }
  return "?";
}

/// DOT label escaping: quote backslash and double quote; everything the
/// renderers emit is otherwise printable ASCII. "\n" becomes the DOT
/// line-break escape so multi-line labels survive quoting.
std::string dotEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size() + 8);
  for (char C : Text) {
    if (C == '\\' || C == '"')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

std::string explainText(const HashPlan &Plan) {
  std::string Out;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "plan %s: keys len=[%u,%u] %s, %u free bits%s%s%s\n",
                familyName(Plan.Family), Plan.MinKeyLen, Plan.MaxKeyLen,
                Plan.FixedLength ? "fixed" : "variable", Plan.FreeBits,
                Plan.Bijective ? ", bijective" : "",
                Plan.FallbackToStl ? ", stl-fallback" : "",
                Plan.PartialLoad ? ", partial-load" : "");
  Out += Buf;
  if (Plan.FallbackToStl) {
    Out += "  defers to std::hash (keys shorter than one machine word)\n";
    return Out;
  }
  std::snprintf(Buf, sizeof(Buf), "  combine: %s\n",
                combineDescription(Plan));
  Out += Buf;
  for (size_t I = 0; I != Plan.Steps.size(); ++I) {
    const PlanStep &S = Plan.Steps[I];
    const uint32_t Width =
        Plan.PartialLoad ? Plan.MaxKeyLen - S.Offset : 8;
    std::snprintf(Buf, sizeof(Buf), "  step %zu: load %uB @ [%u,%u)", I,
                  Width, S.Offset, S.Offset + Width);
    Out += Buf;
    if (hasMask(S)) {
      std::snprintf(Buf, sizeof(Buf), "  pext %s (%d bits)",
                    hex64(S.Mask).c_str(), std::popcount(S.Mask));
      Out += Buf;
    }
    if (S.Shift != 0) {
      std::snprintf(Buf, sizeof(Buf), "  rotl %u", S.Shift);
      Out += Buf;
    }
    std::snprintf(Buf, sizeof(Buf), "  ~%u ops\n", stepCostOps(Plan, S));
    Out += Buf;
  }
  if (Plan.usesSkipTable()) {
    const SkipTable &T = Plan.Skip;
    std::snprintf(Buf, sizeof(Buf),
                  "  skip table: %zu loads, tail bytes from offset %u\n",
                  T.loadCount(), T.TailStart);
    Out += Buf;
    for (size_t C = 0; C + 1 < T.Skip.size(); ++C) {
      std::snprintf(Buf, sizeof(Buf), "    load %zu: skip %u", C,
                    T.Skip[C]);
      Out += Buf;
      if (C < T.Masks.size() && T.Masks[C] != ~uint64_t{0}) {
        std::snprintf(Buf, sizeof(Buf), ", pext %s (%d bits)",
                      hex64(T.Masks[C]).c_str(),
                      std::popcount(T.Masks[C]));
        Out += Buf;
      }
      Out += '\n';
    }
  }
  std::snprintf(Buf, sizeof(Buf), "  est. generated code: %zu bytes\n",
                Plan.codeSizeEstimate());
  Out += Buf;
  return Out;
}

std::string explainJson(const HashPlan &Plan) {
  std::string Out = "{";
  Out += "\"family\":\"" + std::string(familyName(Plan.Family)) + "\"";
  Out += ",\"min_len\":" + std::to_string(Plan.MinKeyLen);
  Out += ",\"max_len\":" + std::to_string(Plan.MaxKeyLen);
  Out += std::string(",\"fixed_length\":") +
         (Plan.FixedLength ? "true" : "false");
  Out += std::string(",\"fallback_to_stl\":") +
         (Plan.FallbackToStl ? "true" : "false");
  Out += std::string(",\"partial_load\":") +
         (Plan.PartialLoad ? "true" : "false");
  Out += ",\"free_bits\":" + std::to_string(Plan.FreeBits);
  Out += std::string(",\"bijective\":") + (Plan.Bijective ? "true" : "false");
  Out += ",\"combine\":\"" + std::string(combineDescription(Plan)) + "\"";
  Out += ",\"code_size_estimate\":" +
         std::to_string(Plan.codeSizeEstimate());
  Out += ",\"steps\":[";
  for (size_t I = 0; I != Plan.Steps.size(); ++I) {
    const PlanStep &S = Plan.Steps[I];
    if (I != 0)
      Out += ',';
    Out += "{\"offset\":" + std::to_string(S.Offset);
    Out += ",\"mask\":\"" + hex64(S.Mask) + "\"";
    Out += ",\"mask_bits\":" +
           std::to_string(hasMask(S) ? std::popcount(S.Mask) : 64);
    Out += ",\"shift\":" + std::to_string(S.Shift);
    Out += ",\"cost_ops\":" + std::to_string(stepCostOps(Plan, S));
    Out += '}';
  }
  Out += ']';
  if (Plan.usesSkipTable()) {
    const SkipTable &T = Plan.Skip;
    Out += ",\"skip_table\":{\"skips\":[";
    for (size_t C = 0; C != T.Skip.size(); ++C) {
      if (C != 0)
        Out += ',';
      Out += std::to_string(T.Skip[C]);
    }
    Out += "],\"masks\":[";
    for (size_t C = 0; C != T.Masks.size(); ++C) {
      if (C != 0)
        Out += ',';
      Out += '"' + hex64(T.Masks[C]) + '"';
    }
    Out += "],\"tail_start\":" + std::to_string(T.TailStart) + '}';
  }
  Out += "}\n";
  return Out;
}

/// Emits one cluster of the shared digraph: key node -> per-step load
/// nodes -> combine node. Node names are prefixed with the cluster
/// index so several plans coexist in one graph.
void appendDotCluster(std::string &Out, size_t Index,
                      const std::string &Name, const HashPlan &Plan) {
  const std::string P = "p" + std::to_string(Index) + "_";
  char Buf[160];
  Out += "  subgraph cluster_" + std::to_string(Index) + " {\n";
  std::snprintf(Buf, sizeof(Buf),
                "    label=\"%s: %s len=[%u,%u] %u free bits%s\";\n",
                dotEscape(Name).c_str(), familyName(Plan.Family),
                Plan.MinKeyLen, Plan.MaxKeyLen, Plan.FreeBits,
                Plan.Bijective ? " (bijective)" : "");
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "    %skey [label=\"key bytes [0,%u)\" shape=note];\n",
                P.c_str(), Plan.MaxKeyLen);
  Out += Buf;
  if (Plan.FallbackToStl) {
    Out += "    " + P + "hash [label=\"std::hash fallback\" " +
           "shape=ellipse];\n";
    Out += "    " + P + "key -> " + P + "hash;\n";
    Out += "  }\n";
    return;
  }
  std::string CombineLabel =
      std::string("hash = ") + combineDescription(Plan);
  Out += "    " + P + "hash [label=\"" + dotEscape(CombineLabel) +
         "\" shape=ellipse];\n";
  for (size_t I = 0; I != Plan.Steps.size(); ++I) {
    const PlanStep &S = Plan.Steps[I];
    const uint32_t Width =
        Plan.PartialLoad ? Plan.MaxKeyLen - S.Offset : 8;
    std::string Label = "load [" + std::to_string(S.Offset) + "," +
                        std::to_string(S.Offset + Width) + ")";
    if (hasMask(S))
      Label += "\npext " + hex64(S.Mask) + "\n(" +
               std::to_string(std::popcount(S.Mask)) + " bits)";
    if (S.Shift != 0)
      Label += "\nrotl " + std::to_string(S.Shift);
    Label += "\n~" + std::to_string(stepCostOps(Plan, S)) + " ops";
    const std::string Node = P + "s" + std::to_string(I);
    Out += "    " + Node + " [label=\"" + dotEscape(Label) + "\"];\n";
    Out += "    " + P + "key -> " + Node + ";\n";
    Out += "    " + Node + " -> " + P + "hash;\n";
  }
  if (Plan.usesSkipTable()) {
    const SkipTable &T = Plan.Skip;
    for (size_t C = 0; C + 1 < T.Skip.size(); ++C) {
      std::string Label = "skip " + std::to_string(T.Skip[C]) + ", load 8B";
      if (C < T.Masks.size() && T.Masks[C] != ~uint64_t{0})
        Label += "\npext " + hex64(T.Masks[C]);
      const std::string Node = P + "v" + std::to_string(C);
      Out += "    " + Node + " [label=\"" + dotEscape(Label) + "\"];\n";
      Out += "    " + P + "key -> " + Node + ";\n";
      Out += "    " + Node + " -> " + P + "hash;\n";
    }
    const std::string Tail = P + "tail";
    Out += "    " + Tail + " [label=\"tail bytes from " +
           std::to_string(T.TailStart) + "\" shape=box];\n";
    Out += "    " + P + "key -> " + Tail + ";\n";
    Out += "    " + Tail + " -> " + P + "hash;\n";
  }
  Out += "  }\n";
}

} // namespace

bool sepe::parseExplainFormat(const std::string &Name,
                              ExplainFormat &Format) {
  if (Name.empty() || Name == "text") {
    Format = ExplainFormat::Text;
    return true;
  }
  if (Name == "json") {
    Format = ExplainFormat::Json;
    return true;
  }
  if (Name == "dot") {
    Format = ExplainFormat::Dot;
    return true;
  }
  return false;
}

std::string sepe::explainPlan(const HashPlan &Plan, ExplainFormat Format) {
  switch (Format) {
  case ExplainFormat::Text:
    return explainText(Plan);
  case ExplainFormat::Json:
    return explainJson(Plan);
  case ExplainFormat::Dot:
    return explainPlansDot({{familyName(Plan.Family), Plan}});
  }
  return "";
}

std::string sepe::explainPlansDot(
    const std::vector<std::pair<std::string, HashPlan>> &Plans) {
  std::string Out;
  Out += "digraph sepe_plan {\n";
  Out += "  rankdir=LR;\n";
  Out += "  node [shape=box fontname=\"monospace\" fontsize=10];\n";
  for (size_t I = 0; I != Plans.size(); ++I)
    appendDotCluster(Out, I, Plans[I].first, Plans[I].second);
  Out += "}\n";
  return Out;
}

std::string sepe::explainJitProgram(const JitProgram &Program) {
  std::string Out;
  char Buf[96];
  const auto *Base = static_cast<const unsigned char *>(Program.code());
  const size_t EvalOff = static_cast<size_t>(
      reinterpret_cast<const char *>(Program.eval()) -
      static_cast<const char *>(Program.code()));
  const size_t BatchOff = static_cast<size_t>(
      reinterpret_cast<const char *>(Program.batch()) -
      static_cast<const char *>(Program.code()));
  std::snprintf(Buf, sizeof(Buf),
                "jit program: %zu bytes, eval @ +0x%zx, batch @ +0x%zx\n",
                Program.codeBytes(), EvalOff, BatchOff);
  Out += Buf;
  for (size_t Line = 0; Line < Program.codeBytes(); Line += 16) {
    if (Line == EvalOff || (EvalOff > Line && EvalOff < Line + 16))
      Out += "  ; <eval entry>\n";
    if (Line == BatchOff || (BatchOff > Line && BatchOff < Line + 16))
      Out += "  ; <batch entry>\n";
    std::snprintf(Buf, sizeof(Buf), "  +0x%04zx:", Line);
    Out += Buf;
    for (size_t I = Line; I < Line + 16 && I < Program.codeBytes(); ++I) {
      std::snprintf(Buf, sizeof(Buf), " %02x", Base[I]);
      Out += Buf;
    }
    Out += '\n';
  }
  return Out;
}
