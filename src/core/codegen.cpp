//===- core/codegen.cpp - Emit C++ source for a HashPlan -----------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/codegen.h"

#include "hashes/aes_round.h"
#include "support/telemetry.h"

#include <cassert>
#include <cstdio>

using namespace sepe;

namespace {

std::string hex64(uint64_t Value) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "0x%016llxULL",
                static_cast<unsigned long long>(Value));
  return Buffer;
}

std::string defaultName(const HashPlan &Plan) {
  return std::string("Sepe") + familyName(Plan.Family) + "Hash";
}

void emitLine(std::string &Out, int Indent, const std::string &Line) {
  Out.append(static_cast<size_t>(Indent) * 2, ' ');
  Out += Line;
  Out += '\n';
}

/// The pext expression for one load at the given source offset.
std::string pextExpr(Target Isa, const std::string &LoadExpr,
                     uint64_t Mask) {
  if (Isa == Target::X86)
    return "_pext_u64(" + LoadExpr + ", " + hex64(Mask) + ")";
  // aarch64 (no bext on the paper's Jetson) and portable targets use the
  // software bit gather from the preamble.
  return "sepe_pext_soft(" + LoadExpr + ", " + hex64(Mask) + ")";
}

void emitFixedXorBody(std::string &Out, const HashPlan &Plan, Target Isa) {
  emitLine(Out, 2, "uint64_t Hash = 0;");
  const bool UsesPext = Plan.Family == HashFamily::Pext;
  for (const PlanStep &S : Plan.Steps) {
    const std::string Load =
        "sepe_load_u64(Ptr + " + std::to_string(S.Offset) + ")";
    std::string Expr = UsesPext ? pextExpr(Isa, Load, S.Mask) : Load;
    // Rotation (not shift) so chunks beyond 64 packed bits wrap around
    // instead of being truncated; identical to Figure 12's shift when
    // the chunk fits.
    if (UsesPext && S.Shift != 0)
      Expr = "sepe_rotl(" + Expr + ", " + std::to_string(S.Shift) + ")";
    emitLine(Out, 2, "Hash ^= " + Expr + ";");
  }
  emitLine(Out, 2, "return Hash;");
}

void emitFixedAesBody(std::string &Out, const HashPlan &Plan) {
  emitLine(Out, 2, "SepeBlock State = sepe_aes_init(Key.size());");
  size_t I = 0;
  for (; I + 1 < Plan.Steps.size(); I += 2) {
    const std::string C0 =
        "sepe_load_u64(Ptr + " + std::to_string(Plan.Steps[I].Offset) + ")";
    const std::string C1 = "sepe_load_u64(Ptr + " +
                           std::to_string(Plan.Steps[I + 1].Offset) + ")";
    emitLine(Out, 2,
             "State = sepe_aesenc(State, sepe_make_block(" + C0 + ", " + C1 +
                 "));");
  }
  if (I < Plan.Steps.size()) {
    const std::string C = "sepe_load_u64(Ptr + " +
                          std::to_string(Plan.Steps[I].Offset) + ")";
    emitLine(Out, 2, "const uint64_t Last = " + C + ";");
    emitLine(Out, 2,
             "State = sepe_aesenc(State, sepe_make_block(Last, Last));");
  }
  emitLine(Out, 2, "return sepe_aes_fold(State);");
}

void emitPartialBody(std::string &Out, const HashPlan &Plan, Target Isa) {
  emitLine(Out, 2, "const uint64_t Word = sepe_load_bytes(Ptr, Key.size());");
  switch (Plan.Family) {
  case HashFamily::Naive:
  case HashFamily::OffXor:
    emitLine(Out, 2, "return Word;");
    return;
  case HashFamily::Pext:
    emitLine(Out, 2,
             "return " +
                 pextExpr(Isa, "Word", Plan.Steps.front().Mask) + ";");
    return;
  case HashFamily::Aes:
    emitLine(Out, 2, "SepeBlock State = sepe_aes_init(Key.size());");
    emitLine(Out, 2,
             "State = sepe_aesenc(State, sepe_make_block(Word, Word));");
    emitLine(Out, 2, "return sepe_aes_fold(State);");
    return;
  }
}

void emitSkipArrays(std::string &Out, const HashPlan &Plan) {
  std::string Skips = "static constexpr size_t Skip[] = {";
  for (size_t I = 0; I != Plan.Skip.Skip.size(); ++I) {
    if (I != 0)
      Skips += ", ";
    Skips += std::to_string(Plan.Skip.Skip[I]);
  }
  Skips += "};";
  emitLine(Out, 2, Skips);
  if (Plan.Family == HashFamily::Pext) {
    std::string Masks = "static constexpr uint64_t Mask[] = {";
    for (size_t I = 0; I != Plan.Skip.Masks.size(); ++I) {
      if (I != 0)
        Masks += ", ";
      Masks += hex64(Plan.Skip.Masks[I]);
    }
    Masks += "};";
    emitLine(Out, 2, Masks);
  }
}

void emitVariableAesBody(std::string &Out, const HashPlan &Plan);

/// The pext call with a runtime mask expression (variable-length loop).
std::string pextCall(Target Isa, const std::string &LoadExpr,
                     const std::string &MaskExpr) {
  if (Isa == Target::X86)
    return "_pext_u64(" + LoadExpr + ", " + MaskExpr + ")";
  return "sepe_pext_soft(" + LoadExpr + ", " + MaskExpr + ")";
}

/// Variable-length body following the shape of Figure 8: skip-table
/// driven word loop plus a byte-at-a-time tail.
void emitVariableBody(std::string &Out, const HashPlan &Plan, Target Isa) {
  const size_t LoadCount = Plan.Skip.loadCount();
  if (Plan.Family == HashFamily::Aes) {
    emitVariableAesBody(Out, Plan);
    return;
  }
  emitLine(Out, 2, "uint64_t Hash = Key.size();");
  if (Plan.Family == HashFamily::Pext)
    emitLine(Out, 2, "unsigned BitOffset = 0;");
  if (LoadCount != 0) {
    emitSkipArrays(Out, Plan);
    emitLine(Out, 2, "Ptr += Skip[0];");
    if (Plan.Family == HashFamily::Pext) {
      emitLine(Out, 2,
               "for (size_t C = 0; C != " + std::to_string(LoadCount) +
                   "; ++C) {");
      emitLine(Out, 3,
               "Hash ^= sepe_rotl(" +
                   pextCall(Isa, "sepe_load_u64(Ptr)", "Mask[C]") +
                   ", BitOffset & 63);");
      emitLine(Out, 3,
               "BitOffset += (unsigned)__builtin_popcountll(Mask[C]);");
      emitLine(Out, 3, "Ptr += Skip[C + 1];");
      emitLine(Out, 2, "}");
    } else {
      emitLine(Out, 2,
               "for (size_t C = 0; C != " + std::to_string(LoadCount) +
                   "; ++C) {");
      emitLine(Out, 3, "Hash ^= sepe_load_u64(Ptr);");
      emitLine(Out, 3, "Ptr += Skip[C + 1];");
      emitLine(Out, 2, "}");
    }
  }
  emitLine(Out, 2, "const char *End = Key.data() + Key.size();");
  if (Plan.Family == HashFamily::Pext)
    emitLine(Out, 2, "unsigned TailShift = BitOffset;");
  else
    emitLine(Out, 2, "unsigned TailShift = 0;");
  emitLine(Out, 2, "while (Ptr < End) {");
  emitLine(Out, 3, "Hash ^= sepe_rotl((uint64_t)(unsigned char)*Ptr, "
                   "TailShift & 63);");
  emitLine(Out, 3, "TailShift += 8;");
  emitLine(Out, 3, "++Ptr;");
  emitLine(Out, 2, "}");
  emitLine(Out, 2, "return Hash;");
}

void emitVariableAesBody(std::string &Out, const HashPlan &Plan) {
  const size_t LoadCount = Plan.Skip.loadCount();
  emitLine(Out, 2, "SepeBlock State = sepe_aes_init(Key.size());");
  emitLine(Out, 2, "uint64_t Pending = 0;");
  emitLine(Out, 2, "bool HavePending = false;");
  if (LoadCount != 0) {
    emitSkipArrays(Out, Plan);
    emitLine(Out, 2, "Ptr += Skip[0];");
    emitLine(Out, 2,
             "for (size_t C = 0; C != " + std::to_string(LoadCount) +
                 "; ++C) {");
    emitLine(Out, 3, "const uint64_t W = sepe_load_u64(Ptr);");
    emitLine(Out, 3, "if (HavePending) {");
    emitLine(Out, 4,
             "State = sepe_aesenc(State, sepe_make_block(Pending, W));");
    emitLine(Out, 4, "HavePending = false;");
    emitLine(Out, 3, "} else {");
    emitLine(Out, 4, "Pending = W;");
    emitLine(Out, 4, "HavePending = true;");
    emitLine(Out, 3, "}");
    emitLine(Out, 3, "Ptr += Skip[C + 1];");
    emitLine(Out, 2, "}");
  }
  emitLine(Out, 2, "const char *End = Key.data() + Key.size();");
  emitLine(Out, 2, "uint64_t TailAcc = 0;");
  emitLine(Out, 2, "unsigned TailShift = 0;");
  emitLine(Out, 2, "while (Ptr < End) {");
  emitLine(Out, 3,
           "TailAcc ^= (uint64_t)(unsigned char)*Ptr << (TailShift & 63);");
  emitLine(Out, 3, "TailShift += 8;");
  emitLine(Out, 3, "++Ptr;");
  emitLine(Out, 2, "}");
  emitLine(Out, 2, "if (HavePending)");
  emitLine(Out, 3,
           "State = sepe_aesenc(State, sepe_make_block(Pending, Pending));");
  emitLine(Out, 2, "if (TailShift != 0 || TailAcc != 0)");
  emitLine(Out, 3, "State = sepe_aesenc(State, "
                   "sepe_make_block(TailAcc, Key.size()));");
  emitLine(Out, 2, "return sepe_aes_fold(State);");
}

} // namespace

const char *sepe::targetName(Target T) {
  switch (T) {
  case Target::X86:
    return "x86";
  case Target::AArch64:
    return "aarch64";
  case Target::Portable:
    return "portable";
  }
  return "<invalid>";
}

std::string sepe::emitPreamble(Target Isa) {
  std::string Out;
  Out += "// Generated by sepe keysynth; target: ";
  Out += targetName(Isa);
  Out += "\n#ifndef SEPE_GENERATED_PREAMBLE\n#define "
         "SEPE_GENERATED_PREAMBLE\n";
  Out += "#include <cstddef>\n#include <cstdint>\n#include <cstring>\n"
         "#include <string>\n";
  if (Isa == Target::X86)
    Out += "#include <immintrin.h>\n";
  if (Isa == Target::AArch64)
    Out += "#include <arm_neon.h>\n";

  Out += R"(
static inline uint64_t sepe_load_u64(const char *P) {
  uint64_t V;
  std::memcpy(&V, P, sizeof(V));
  return V;
}
static inline uint64_t sepe_load_bytes(const char *P, size_t N) {
  uint64_t V = 0;
  for (size_t I = 0; I < N && I < 8; ++I)
    V |= (uint64_t)(unsigned char)P[I] << (8 * I);
  return V;
}
static inline uint64_t sepe_pext_soft(uint64_t Src, uint64_t Mask) {
  uint64_t Dst = 0;
  for (unsigned K = 0; Mask != 0; Mask &= Mask - 1, ++K)
    if (Src & (Mask & -Mask))
      Dst |= (uint64_t)1 << K;
  return Dst;
}
static inline uint64_t sepe_rotl(uint64_t V, unsigned S) {
  return S == 0 ? V : (V << S) | (V >> (64 - S));
}
)";

  if (Isa == Target::X86) {
    Out += R"(
typedef __m128i SepeBlock;
static inline SepeBlock sepe_make_block(uint64_t Lo, uint64_t Hi) {
  return _mm_set_epi64x((long long)Hi, (long long)Lo);
}
static inline SepeBlock sepe_aes_init(size_t Len) {
  return sepe_make_block(0x243f6a8885a308d3ULL ^ Len, 0x13198a2e03707344ULL);
}
static inline SepeBlock sepe_aesenc(SepeBlock State, SepeBlock Chunk) {
  return _mm_aesenc_si128(State, Chunk);
}
static inline uint64_t sepe_aes_fold(SepeBlock FinalState) {
  SepeBlock State = _mm_aesenc_si128(FinalState, sepe_aes_init(0));
  const uint64_t Lo = (uint64_t)_mm_cvtsi128_si64(State);
  const uint64_t Hi = (uint64_t)_mm_cvtsi128_si64(
      _mm_unpackhi_epi64(State, State));
  return Lo ^ Hi;
}
)";
  } else if (Isa == Target::AArch64) {
    // AESE xors the round key before SubBytes/ShiftRows, so x86's aesenc
    // is AESMC(AESE(State, 0)) ^ Chunk.
    Out += R"(
typedef uint8x16_t SepeBlock;
static inline SepeBlock sepe_make_block(uint64_t Lo, uint64_t Hi) {
  const uint64x2_t V = {Lo, Hi};
  return vreinterpretq_u8_u64(V);
}
static inline SepeBlock sepe_aes_init(size_t Len) {
  return sepe_make_block(0x243f6a8885a308d3ULL ^ Len, 0x13198a2e03707344ULL);
}
static inline SepeBlock sepe_aesenc(SepeBlock State, SepeBlock Chunk) {
  return veorq_u8(vaesmcq_u8(vaeseq_u8(State, vdupq_n_u8(0))), Chunk);
}
static inline uint64_t sepe_aes_fold(SepeBlock FinalState) {
  const SepeBlock State = sepe_aesenc(FinalState, sepe_aes_init(0));
  const uint64x2_t V = vreinterpretq_u64_u8(State);
  return vgetq_lane_u64(V, 0) ^ vgetq_lane_u64(V, 1);
}
)";
  } else {
    Out += R"(
struct SepeBlock { uint64_t Lo, Hi; };
static inline SepeBlock sepe_make_block(uint64_t Lo, uint64_t Hi) {
  return SepeBlock{Lo, Hi};
}
static inline SepeBlock sepe_aes_init(size_t Len) {
  return SepeBlock{0x243f6a8885a308d3ULL ^ Len, 0x13198a2e03707344ULL};
}
// Portable single AES round (SubBytes, ShiftRows, MixColumns, xor key).
static inline unsigned char sepe_gmul2(unsigned char X) {
  return (unsigned char)((X << 1) ^ ((X & 0x80) ? 0x1b : 0));
}
@SEPE_SBOX_TABLE@
static inline SepeBlock sepe_aesenc(SepeBlock State, SepeBlock Chunk) {
  unsigned char In[16], Sh[16], Mx[16];
  std::memcpy(In, &State.Lo, 8);
  std::memcpy(In + 8, &State.Hi, 8);
  for (int Col = 0; Col != 4; ++Col)
    for (int Row = 0; Row != 4; ++Row)
      Sh[Row + 4 * Col] = SepeAesSBox[In[Row + 4 * ((Col + Row) % 4)]];
  for (int Col = 0; Col != 4; ++Col) {
    const unsigned char *C = Sh + 4 * Col;
    unsigned char *M = Mx + 4 * Col;
    M[0] = (unsigned char)(sepe_gmul2(C[0]) ^ sepe_gmul2(C[1]) ^ C[1] ^
                           C[2] ^ C[3]);
    M[1] = (unsigned char)(C[0] ^ sepe_gmul2(C[1]) ^ sepe_gmul2(C[2]) ^
                           C[2] ^ C[3]);
    M[2] = (unsigned char)(C[0] ^ C[1] ^ sepe_gmul2(C[2]) ^
                           sepe_gmul2(C[3]) ^ C[3]);
    M[3] = (unsigned char)(sepe_gmul2(C[0]) ^ C[0] ^ C[1] ^ C[2] ^
                           sepe_gmul2(C[3]));
  }
  SepeBlock Result;
  std::memcpy(&Result.Lo, Mx, 8);
  std::memcpy(&Result.Hi, Mx + 8, 8);
  Result.Lo ^= Chunk.Lo;
  Result.Hi ^= Chunk.Hi;
  return Result;
}
static inline uint64_t sepe_aes_fold(SepeBlock FinalState) {
  const SepeBlock State = sepe_aesenc(FinalState, sepe_aes_init(0));
  return State.Lo ^ State.Hi;
}
)";
  }
  Out += "#endif // SEPE_GENERATED_PREAMBLE\n";

  // Splice in the compile-time generated S-box so portable AES code is
  // self-contained.
  const std::string Placeholder = "@SEPE_SBOX_TABLE@";
  const size_t Pos = Out.find(Placeholder);
  if (Pos != std::string::npos) {
    std::string Table = "static const unsigned char SepeAesSBox[256] = {";
    for (unsigned I = 0; I != 256; ++I) {
      if (I % 12 == 0)
        Table += "\n    ";
      char Buffer[8];
      std::snprintf(Buffer, sizeof(Buffer), "0x%02x,", AesSBox[I]);
      Table += Buffer;
    }
    Table += "};";
    Out.replace(Pos, Placeholder.size(), Table);
  }
  return Out;
}

std::string sepe::emitHashFunction(const HashPlan &Plan,
                                   const CodegenOptions &Options) {
  SEPE_SPAN("synthesis.codegen");
  const std::string Name =
      Options.StructName.empty() ? defaultName(Plan) : Options.StructName;
  std::string Out;
  Out += "/// Synthesized ";
  Out += familyName(Plan.Family);
  Out += " hash for keys of length ";
  if (Plan.FixedLength)
    Out += std::to_string(Plan.MaxKeyLen);
  else
    Out += "[" + std::to_string(Plan.MinKeyLen) + ", " +
           std::to_string(Plan.MaxKeyLen) + "]";
  Out += " (" + std::to_string(Plan.FreeBits) + " free bits).\n";
  emitLine(Out, 0, "struct " + Name + " {");
  emitLine(Out, 1, "size_t operator()(const std::string &Key) const {");
  if (Plan.FallbackToStl) {
    emitLine(Out, 2, "// Keys shorter than one machine word: SEPE defers");
    emitLine(Out, 2, "// to the standard hash (paper, footnote 5).");
    emitLine(Out, 2, "return std::hash<std::string>{}(Key);");
  } else {
    emitLine(Out, 2, "const char *Ptr = Key.data();");
    if (Plan.PartialLoad)
      emitPartialBody(Out, Plan, Options.Isa);
    else if (Plan.FixedLength && Plan.Family == HashFamily::Aes)
      emitFixedAesBody(Out, Plan);
    else if (Plan.FixedLength)
      emitFixedXorBody(Out, Plan, Options.Isa);
    else
      emitVariableBody(Out, Plan, Options.Isa);
  }
  emitLine(Out, 1, "}");
  emitLine(Out, 0, "};");

  if (Options.EmitCWrapper) {
    emitLine(Out, 0, "");
    emitLine(Out, 0, "extern \"C\" uint64_t " + Name +
                         "_hash(const char *Data, size_t Len) {");
    emitLine(Out, 1, "return " + Name + "{}(std::string(Data, Len));");
    emitLine(Out, 0, "}");
  }
  return Out;
}

std::string sepe::emitTranslationUnit(const std::vector<HashPlan> &Plans,
                                      const CodegenOptions &Options) {
  std::string Out = emitPreamble(Options.Isa);
  for (const HashPlan &Plan : Plans) {
    CodegenOptions PerPlan = Options;
    if (!Options.StructName.empty() && Plans.size() > 1)
      PerPlan.StructName = Options.StructName + familyName(Plan.Family);
    Out += '\n';
    Out += emitHashFunction(Plan, PerPlan);
  }
  return Out;
}
