//===- core/plan_io.h - HashPlan (de)serialization --------------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text serialization of HashPlan so synthesized functions can be
/// cached, diffed and shipped separately from the synthesizer (the
/// keysynth tool exposes it via --plan-out / --plan-in). The format is
/// a stable line-oriented key/value layout:
///
///   sepe-plan v1
///   family Pext
///   len 11 11
///   flags bijective
///   freebits 36
///   step 0 0x0f000f0f000f0f0f 0
///   step 3 0x0f0f0f0000000000 52
///
/// Variable-length plans serialize their skip table and masks; fallback
/// and partial-load plans carry the corresponding flags.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CORE_PLAN_IO_H
#define SEPE_CORE_PLAN_IO_H

#include "core/plan.h"
#include "support/expected.h"

#include <string>
#include <string_view>

namespace sepe {

/// Serializes \p Plan into the stable text format.
std::string serializePlan(const HashPlan &Plan);

/// Parses a plan previously produced by serializePlan. Fails with a
/// line-numbered message on malformed input; round-trips every field.
Expected<HashPlan> deserializePlan(std::string_view Text);

} // namespace sepe

#endif // SEPE_CORE_PLAN_IO_H
