//===- core/key_pattern.h - Quad abstraction of a key format ----*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A KeyPattern is the paper's "regular expression" in lattice form: one
/// BytePattern per position plus length bounds. It is the interchange
/// format between inference (Section 3.1) and code generation
/// (Section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CORE_KEY_PATTERN_H
#define SEPE_CORE_KEY_PATTERN_H

#include "core/byte_pattern.h"

#include <cassert>
#include <string>
#include <string_view>
#include <vector>

namespace sepe {

/// The per-position quad abstraction of a key format.
class KeyPattern {
public:
  KeyPattern() = default;

  /// Builds a fixed-length pattern from \p Bytes.
  static KeyPattern fixed(std::vector<BytePattern> Bytes) {
    KeyPattern P;
    P.MinLen = P.MaxLen = Bytes.size();
    P.Bytes = std::move(Bytes);
    return P;
  }

  /// Builds a variable-length pattern: positions in [MinLen, MaxLen) are
  /// optional. \p Bytes must have MaxLen entries.
  static KeyPattern variable(std::vector<BytePattern> Bytes, size_t MinLen) {
    assert(MinLen <= Bytes.size() && "MinLen exceeds pattern width");
    KeyPattern P;
    P.MinLen = MinLen;
    P.MaxLen = Bytes.size();
    P.Bytes = std::move(Bytes);
    return P;
  }

  size_t minLength() const { return MinLen; }
  size_t maxLength() const { return MaxLen; }
  bool isFixedLength() const { return MinLen == MaxLen; }
  bool empty() const { return Bytes.empty(); }
  size_t size() const { return Bytes.size(); }

  const BytePattern &byteAt(size_t I) const {
    assert(I < Bytes.size() && "byte index out of range");
    return Bytes[I];
  }

  const std::vector<BytePattern> &bytes() const { return Bytes; }

  /// True when \p Key is admitted: its length lies in [MinLen, MaxLen]
  /// and every byte satisfies the pattern at its position.
  bool matches(std::string_view Key) const {
    if (Key.size() < MinLen || Key.size() > MaxLen)
      return false;
    for (size_t I = 0; I != Key.size(); ++I)
      if (!Bytes[I].matches(static_cast<uint8_t>(Key[I])))
        return false;
    return true;
  }

  /// Total number of free (non-constant) bits over all positions; the
  /// "relevant bits" count of Section 4.2.
  unsigned freeBitCount() const {
    unsigned Count = 0;
    for (const BytePattern &B : Bytes)
      Count += 8 - B.constBitCount();
    return Count;
  }

  /// Pointwise join of two patterns (used when merging inferred patterns
  /// from separate example sets). Positions beyond the shorter pattern
  /// become top, and length bounds widen.
  friend KeyPattern join(const KeyPattern &A, const KeyPattern &B) {
    const size_t MaxLen = std::max(A.MaxLen, B.MaxLen);
    std::vector<BytePattern> Bytes(MaxLen, BytePattern::top());
    const size_t Common = std::min(A.Bytes.size(), B.Bytes.size());
    for (size_t I = 0; I != Common; ++I)
      Bytes[I] = join(A.Bytes[I], B.Bytes[I]);
    return KeyPattern::variable(std::move(Bytes),
                                std::min(A.MinLen, B.MinLen));
  }

  friend bool operator==(const KeyPattern &A, const KeyPattern &B) {
    return A.MinLen == B.MinLen && A.MaxLen == B.MaxLen && A.Bytes == B.Bytes;
  }

  /// Debug rendering: one quad string per byte, '|' separated.
  std::string str() const {
    std::string Out;
    for (size_t I = 0; I != Bytes.size(); ++I) {
      if (I != 0)
        Out += '|';
      Out += Bytes[I].str();
    }
    return Out;
  }

private:
  std::vector<BytePattern> Bytes;
  size_t MinLen = 0;
  size_t MaxLen = 0;
};

} // namespace sepe

#endif // SEPE_CORE_KEY_PATTERN_H
