//===- core/key_pattern.h - Quad abstraction of a key format ----*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A KeyPattern is the paper's "regular expression" in lattice form: one
/// BytePattern per position plus length bounds. It is the interchange
/// format between inference (Section 3.1) and code generation
/// (Section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CORE_KEY_PATTERN_H
#define SEPE_CORE_KEY_PATTERN_H

#include "core/byte_pattern.h"
#include "support/bit_ops.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sepe {

/// The per-position quad abstraction of a key format.
class KeyPattern {
public:
  KeyPattern() = default;

  /// Builds a fixed-length pattern from \p Bytes.
  static KeyPattern fixed(std::vector<BytePattern> Bytes) {
    KeyPattern P;
    P.MinLen = P.MaxLen = Bytes.size();
    P.Bytes = std::move(Bytes);
    P.buildWords();
    return P;
  }

  /// Builds a variable-length pattern: positions in [MinLen, MaxLen) are
  /// optional. \p Bytes must have MaxLen entries.
  static KeyPattern variable(std::vector<BytePattern> Bytes, size_t MinLen) {
    assert(MinLen <= Bytes.size() && "MinLen exceeds pattern width");
    KeyPattern P;
    P.MinLen = MinLen;
    P.MaxLen = Bytes.size();
    P.Bytes = std::move(Bytes);
    P.buildWords();
    return P;
  }

  size_t minLength() const { return MinLen; }
  size_t maxLength() const { return MaxLen; }
  bool isFixedLength() const { return MinLen == MaxLen; }
  bool empty() const { return Bytes.empty(); }
  size_t size() const { return Bytes.size(); }

  const BytePattern &byteAt(size_t I) const {
    assert(I < Bytes.size() && "byte index out of range");
    return Bytes[I];
  }

  const std::vector<BytePattern> &bytes() const { return Bytes; }

  /// True when \p Key is admitted: its length lies in [MinLen, MaxLen]
  /// and every byte satisfies the pattern at its position. Word-at-a-time:
  /// the per-position (ConstMask, ConstValue) pairs are precomputed into
  /// 8-byte words at construction, so membership costs one masked
  /// compare-and-branch per 8 key bytes instead of a per-byte loop —
  /// cheap enough to guard every key on a hashing fast path.
  bool matches(std::string_view Key) const {
    if (!FixedChecks.empty()) {
      if (Key.size() != MaxLen)
        return false;
      const char *P = Key.data();
      for (const WordCheck &C : FixedChecks)
        if ((loadU64Le(P + C.Offset) & C.Mask) != C.Value)
          return false;
      return true;
    }
    return matchesGeneral(Key);
  }

  /// Batch membership: Out[I] = matches(Keys[I]) for I in [0, N); returns
  /// the number of admitted keys. The batch shape lets a guarded
  /// dispatcher test a whole block before committing it to the
  /// specialized batch kernel (core/executor.h hashBatchGuarded).
  size_t matchesBatch(const std::string_view *Keys, uint8_t *Out,
                      size_t N) const {
    size_t Admitted = 0;
    if (!FixedChecks.empty()) {
      // Hoist the check table out of the key loop: Out is a byte
      // pointer, so without locals every Out[I] store would force the
      // member vectors to be reloaded. The inner compare is branchless
      // (&=) — on an in-format stream every check passes, so early
      // exits buy nothing and cost a branch per word.
      const WordCheck *Checks = FixedChecks.data();
      const size_t NumChecks = FixedChecks.size();
      const size_t Len = MaxLen;
      for (size_t I = 0; I != N; ++I) {
        bool M = Keys[I].size() == Len;
        if (M) {
          const char *P = Keys[I].data();
          for (size_t C = 0; C != NumChecks; ++C)
            M &= (loadU64Le(P + Checks[C].Offset) & Checks[C].Mask) ==
                 Checks[C].Value;
        }
        Out[I] = M;
        Admitted += M;
      }
      return Admitted;
    }
    for (size_t I = 0; I != N; ++I) {
      const bool M = matchesGeneral(Keys[I]);
      Out[I] = M;
      Admitted += M;
    }
    return Admitted;
  }

  /// Total number of free (non-constant) bits over all positions; the
  /// "relevant bits" count of Section 4.2.
  unsigned freeBitCount() const {
    unsigned Count = 0;
    for (const BytePattern &B : Bytes)
      Count += 8 - B.constBitCount();
    return Count;
  }

  /// Pointwise join of two patterns (used when merging inferred patterns
  /// from separate example sets). Positions beyond the shorter pattern
  /// become top, and length bounds widen.
  friend KeyPattern join(const KeyPattern &A, const KeyPattern &B) {
    const size_t MaxLen = std::max(A.MaxLen, B.MaxLen);
    std::vector<BytePattern> Bytes(MaxLen, BytePattern::top());
    const size_t Common = std::min(A.Bytes.size(), B.Bytes.size());
    for (size_t I = 0; I != Common; ++I)
      Bytes[I] = join(A.Bytes[I], B.Bytes[I]);
    return KeyPattern::variable(std::move(Bytes),
                                std::min(A.MinLen, B.MinLen));
  }

  friend bool operator==(const KeyPattern &A, const KeyPattern &B) {
    return A.MinLen == B.MinLen && A.MaxLen == B.MaxLen && A.Bytes == B.Bytes;
  }

  /// Debug rendering: one quad string per byte, '|' separated.
  std::string str() const {
    std::string Out;
    for (size_t I = 0; I != Bytes.size(); ++I) {
      if (I != 0)
        Out += '|';
      Out += Bytes[I].str();
    }
    return Out;
  }

private:
  /// One precomputed word compare of the fixed-length fast path:
  /// (loadU64Le(Key + Offset) & Mask) == Value.
  struct WordCheck {
    uint32_t Offset = 0;
    uint64_t Mask = 0;
    uint64_t Value = 0;
  };

  /// The slow path: variable-length and sub-word patterns. Walks the
  /// aligned word tables with a masked partial load for the tail.
  bool matchesGeneral(std::string_view Key) const {
    if (Key.size() < MinLen || Key.size() > MaxLen)
      return false;
    const char *P = Key.data();
    size_t I = 0, W = 0;
    for (; I + 8 <= Key.size(); I += 8, ++W)
      if ((loadU64Le(P + I) & MaskWords[W]) != ValueWords[W])
        return false;
    const size_t Tail = Key.size() - I;
    if (Tail != 0) {
      // Exclude positions past the key's end from the compare: they are
      // optional (length already checked), and the zero-padding of the
      // partial load must not be tested against their constant bits.
      const uint64_t TailMask = ~uint64_t{0} >> (8 * (8 - Tail));
      if ((loadBytesLe(P + I, Tail) & MaskWords[W] & TailMask) !=
          (ValueWords[W] & TailMask))
        return false;
    }
    return true;
  }

  /// Packs a window of eight BytePatterns starting at \p Offset into one
  /// (mask, value) word compare.
  WordCheck packWindow(size_t Offset) const {
    WordCheck C;
    C.Offset = static_cast<uint32_t>(Offset);
    for (size_t I = 0; I != 8; ++I) {
      C.Mask |= uint64_t{Bytes[Offset + I].constMask()} << (8 * I);
      C.Value |= uint64_t{Bytes[Offset + I].constValue()} << (8 * I);
    }
    return C;
  }

  /// Packs the per-position (ConstMask, ConstValue) pairs into little-
  /// endian 8-byte words, zero-padded past MaxLen (a zero mask admits
  /// anything, so the padding can never reject). Derived state: every
  /// factory rebuilds it, operator== ignores it.
  void buildWords() {
    const size_t NumWords = (Bytes.size() + 7) / 8;
    MaskWords.assign(NumWords, 0);
    ValueWords.assign(NumWords, 0);
    for (size_t I = 0; I != Bytes.size(); ++I) {
      const unsigned Shift = 8 * (I % 8);
      MaskWords[I / 8] |= uint64_t{Bytes[I].constMask()} << Shift;
      ValueWords[I / 8] |= uint64_t{Bytes[I].constValue()} << Shift;
    }
    // Fixed-length patterns of at least a word get full-word checks with
    // an overlapping final window ending exactly at the key's last byte
    // — no partial tail load, every compare is one unaligned 8-byte
    // read. Reading backwards from the end never runs past the buffer
    // because the guard only fires on keys of exactly MaxLen bytes.
    FixedChecks.clear();
    if (MinLen == MaxLen && MaxLen >= 8) {
      size_t Off = 0;
      for (; Off + 8 <= MaxLen; Off += 8)
        FixedChecks.push_back(packWindow(Off));
      if (Off != MaxLen) {
        const WordCheck Overlap = packWindow(MaxLen - 8);
        // An all-constant key would leave the window mask-only zero;
        // keep the check anyway — Mask 0 compares 0 == 0 and is free.
        FixedChecks.push_back(Overlap);
      }
    }
  }

  std::vector<BytePattern> Bytes;
  std::vector<uint64_t> MaskWords;
  std::vector<uint64_t> ValueWords;
  std::vector<WordCheck> FixedChecks;
  size_t MinLen = 0;
  size_t MaxLen = 0;
};

} // namespace sepe

#endif // SEPE_CORE_KEY_PATTERN_H
