//===- core/regex_parser.cpp - Restricted regex -> FormatSpec ------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/regex_parser.h"

#include "support/telemetry.h"

#include <cctype>
#include <optional>
#include <string>

using namespace sepe;

namespace {

/// The expansion of a regex fragment: a run of required positions
/// followed by a run of optional positions. Optional positions may only
/// occur as a tail, which keeps the positional abstraction exact.
struct Expansion {
  std::vector<CharSet> Required;
  std::vector<CharSet> Optional;

  size_t width() const { return Required.size() + Optional.size(); }
  bool isFixed() const { return Optional.empty(); }
};

class Parser {
public:
  explicit Parser(std::string_view Input) : Input(Input) {}

  Expected<FormatSpec> run() {
    Expected<Expansion> Body = parseSequence(/*InsideGroup=*/false);
    if (!Body)
      return Body.error();
    if (Pos != Input.size())
      return Error::at(Pos, "unexpected ')'");
    std::vector<CharSet> Classes = std::move(Body->Required);
    const size_t MinLen = Classes.size();
    for (CharSet &Tail : Body->Optional)
      Classes.push_back(std::move(Tail));
    if (Classes.empty())
      return Error::at(0, "empty regular expression describes no key bytes");
    return FormatSpec::variable(std::move(Classes), MinLen);
  }

private:
  std::string_view Input;
  size_t Pos = 0;

  bool atEnd() const { return Pos >= Input.size(); }
  char peek() const { return Input[Pos]; }

  Expected<Expansion> parseSequence(bool InsideGroup) {
    Expansion Result;
    while (!atEnd() && peek() != ')') {
      const size_t ItemPos = Pos;
      Expected<Expansion> Item = parseItem();
      if (!Item)
        return Item.error();
      if (!Result.isFixed() && Item->width() != 0)
        return Error::at(ItemPos,
                         "variable-length construct is only supported at "
                         "the end of the pattern");
      for (CharSet &C : Item->Required)
        Result.Required.push_back(std::move(C));
      for (CharSet &C : Item->Optional)
        Result.Optional.push_back(std::move(C));
      if (Result.width() > MaxRegexWidth)
        return Error::at(ItemPos, "expanded pattern exceeds the maximum "
                                  "supported width");
    }
    if (InsideGroup) {
      if (atEnd())
        return Error::at(Pos, "expected ')' before end of pattern");
      ++Pos; // consume ')'
    }
    return Result;
  }

  Expected<Expansion> parseItem() {
    const size_t AtomPos = Pos;
    Expected<Expansion> Atom = parseAtom();
    if (!Atom)
      return Atom.error();
    return applyQuantifier(std::move(*Atom), AtomPos);
  }

  Expected<Expansion> parseAtom() {
    const char C = peek();
    if (C == '(') {
      ++Pos;
      return parseSequence(/*InsideGroup=*/true);
    }
    if (C == '[') {
      Expected<CharSet> Class = parseClass();
      if (!Class)
        return Class.error();
      return single(Class.take());
    }
    if (C == '\\') {
      Expected<CharSet> Escaped = parseEscape();
      if (!Escaped)
        return Escaped.error();
      return single(Escaped.take());
    }
    if (C == '.') {
      ++Pos;
      return single(CharSet::any());
    }
    if (C == '*' || C == '+')
      return Error::at(Pos, "unbounded repetition is not supported; SEPE "
                            "requires a bounded key format");
    if (C == '|')
      return Error::at(Pos, "alternation is not supported; provide one "
                            "pattern per key format");
    if (C == '{' || C == '}' || C == '?' || C == ']')
      return Error::at(Pos, std::string("unexpected '") + C + "'");
    ++Pos;
    return single(CharSet::singleton(static_cast<uint8_t>(C)));
  }

  static Expansion single(CharSet Class) {
    Expansion E;
    E.Required.push_back(std::move(Class));
    return E;
  }

  Expected<Expansion> applyQuantifier(Expansion Atom, size_t AtomPos) {
    if (atEnd())
      return Atom;
    if (peek() == '?') {
      ++Pos;
      if (!Atom.isFixed())
        return Error::at(AtomPos, "'?' applied to a variable-length group");
      Expansion Result;
      Result.Optional = std::move(Atom.Required);
      return Result;
    }
    if (peek() != '{')
      return Atom;

    ++Pos; // consume '{'
    Expected<size_t> Lo = parseCount();
    if (!Lo)
      return Lo.error();
    size_t Hi = *Lo;
    if (!atEnd() && peek() == ',') {
      ++Pos;
      if (!atEnd() && peek() == '}')
        return Error::at(Pos, "'{n,}' unbounded repetition is not supported");
      Expected<size_t> HiCount = parseCount();
      if (!HiCount)
        return HiCount.error();
      Hi = *HiCount;
    }
    if (atEnd() || peek() != '}')
      return Error::at(Pos, "expected '}' to close repetition count");
    ++Pos;
    if (Hi < *Lo)
      return Error::at(Pos, "repetition range {n,m} requires n <= m");
    if (!Atom.isFixed() && Hi > 1)
      return Error::at(AtomPos,
                       "repetition of a variable-length group is not "
                       "supported");
    if (Atom.width() != 0 && Hi > MaxRegexWidth / Atom.width())
      return Error::at(AtomPos, "expanded pattern exceeds the maximum "
                                "supported width");

    Expansion Result;
    for (size_t I = 0; I != *Lo; ++I)
      for (const CharSet &C : Atom.Required)
        Result.Required.push_back(C);
    for (size_t I = *Lo; I != Hi; ++I)
      for (const CharSet &C : Atom.Required)
        Result.Optional.push_back(C);
    // A variable-length atom repeated at most once keeps its own tail.
    if (!Atom.isFixed())
      for (const CharSet &C : Atom.Optional)
        Result.Optional.push_back(C);
    return Result;
  }

  Expected<size_t> parseCount() {
    if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
      return Error::at(Pos, "expected a repetition count");
    size_t Value = 0;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
      Value = Value * 10 + static_cast<size_t>(peek() - '0');
      if (Value > MaxRegexWidth)
        return Error::at(Pos, "repetition count is too large");
      ++Pos;
    }
    return Value;
  }

  Expected<CharSet> parseClass() {
    assert(peek() == '[' && "parseClass expects an opening bracket");
    const size_t OpenPos = Pos;
    ++Pos;
    if (!atEnd() && peek() == '^')
      return Error::at(Pos, "negated character classes are not supported");
    CharSet Result;
    while (!atEnd() && peek() != ']') {
      Expected<CharSet> First = parseClassMember();
      if (!First)
        return First.error();
      // A range requires a singleton on both sides: [a-f].
      if (!atEnd() && peek() == '-' && Pos + 1 < Input.size() &&
          Input[Pos + 1] != ']') {
        if (!First->isSingleton())
          return Error::at(Pos, "range bound must be a single character");
        ++Pos; // consume '-'
        Expected<CharSet> Last = parseClassMember();
        if (!Last)
          return Last.error();
        if (!Last->isSingleton())
          return Error::at(Pos, "range bound must be a single character");
        const uint8_t Lo = First->min(), Hi = Last->min();
        if (Lo > Hi)
          return Error::at(Pos, "inverted character range");
        Result.insertRange(Lo, Hi);
        continue;
      }
      Result |= *First;
    }
    if (atEnd())
      return Error::at(OpenPos, "unterminated character class");
    ++Pos; // consume ']'
    if (Result.empty())
      return Error::at(OpenPos, "empty character class");
    return Result;
  }

  Expected<CharSet> parseClassMember() {
    if (peek() == '\\')
      return parseEscape();
    CharSet Single = CharSet::singleton(static_cast<uint8_t>(peek()));
    ++Pos;
    return Single;
  }

  Expected<CharSet> parseEscape() {
    assert(peek() == '\\' && "parseEscape expects a backslash");
    const size_t SlashPos = Pos;
    ++Pos;
    if (atEnd())
      return Error::at(SlashPos, "dangling '\\' at end of pattern");
    const char C = peek();
    ++Pos;
    switch (C) {
    case 'd':
      return CharSet::range('0', '9');
    case 'w': {
      CharSet Word = CharSet::range('a', 'z');
      Word |= CharSet::range('A', 'Z');
      Word |= CharSet::range('0', '9');
      Word.insert('_');
      return Word;
    }
    case 's': {
      CharSet Space;
      for (char W : {' ', '\t', '\n', '\r', '\f', '\v'})
        Space.insert(static_cast<uint8_t>(W));
      return Space;
    }
    case 'n':
      return CharSet::singleton('\n');
    case 't':
      return CharSet::singleton('\t');
    case 'r':
      return CharSet::singleton('\r');
    case '0':
      return CharSet::singleton('\0');
    case 'x': {
      if (Pos + 1 >= Input.size() || !isHex(Input[Pos]) || !isHex(Input[Pos + 1]))
        return Error::at(SlashPos, "\\x escape requires two hex digits");
      const uint8_t Value = static_cast<uint8_t>(hexVal(Input[Pos]) * 16 +
                                                 hexVal(Input[Pos + 1]));
      Pos += 2;
      return CharSet::singleton(Value);
    }
    case 'D':
    case 'W':
    case 'S':
      return Error::at(SlashPos, "negated escape classes are not supported");
    default:
      // Any other escaped character stands for itself: \., \\, \-, \( ...
      return CharSet::singleton(static_cast<uint8_t>(C));
    }
  }

  static bool isHex(char C) {
    return std::isxdigit(static_cast<unsigned char>(C)) != 0;
  }
  static unsigned hexVal(char C) {
    if (C >= '0' && C <= '9')
      return static_cast<unsigned>(C - '0');
    if (C >= 'a' && C <= 'f')
      return static_cast<unsigned>(C - 'a' + 10);
    return static_cast<unsigned>(C - 'A' + 10);
  }
};

} // namespace

Expected<FormatSpec> sepe::parseRegex(std::string_view Regex) {
  SEPE_SPAN("synthesis.range_parse");
  return Parser(Regex).run();
}
