//===- core/format_spec.h - Exact description of a key format --*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exact (non-lattice) description of a key format: one CharSet per
/// position plus length bounds. The regex parser produces a FormatSpec;
/// the key generators enumerate it; abstract() lowers it into the quad
/// lattice for synthesis.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CORE_FORMAT_SPEC_H
#define SEPE_CORE_FORMAT_SPEC_H

#include "core/charset.h"
#include "core/key_pattern.h"

#include <cassert>
#include <string>
#include <string_view>
#include <vector>

namespace sepe {

/// An exact key format: position I admits exactly the bytes in
/// Classes[I]; keys have length in [MinLen, Classes.size()].
class FormatSpec {
public:
  FormatSpec() = default;

  static FormatSpec fixed(std::vector<CharSet> Classes) {
    FormatSpec Spec;
    Spec.MinLen = Classes.size();
    Spec.Classes = std::move(Classes);
    return Spec;
  }

  static FormatSpec variable(std::vector<CharSet> Classes, size_t MinLen) {
    assert(MinLen <= Classes.size() && "MinLen exceeds format width");
    FormatSpec Spec;
    Spec.MinLen = MinLen;
    Spec.Classes = std::move(Classes);
    return Spec;
  }

  size_t minLength() const { return MinLen; }
  size_t maxLength() const { return Classes.size(); }
  bool isFixedLength() const { return MinLen == Classes.size(); }
  bool empty() const { return Classes.empty(); }

  const CharSet &classAt(size_t I) const {
    assert(I < Classes.size() && "class index out of range");
    return Classes[I];
  }

  const std::vector<CharSet> &classes() const { return Classes; }

  /// True when \p Key belongs to the format.
  bool matches(std::string_view Key) const {
    if (Key.size() < MinLen || Key.size() > Classes.size())
      return false;
    for (size_t I = 0; I != Key.size(); ++I)
      if (!Classes[I].contains(static_cast<uint8_t>(Key[I])))
        return false;
    return true;
  }

  /// Positions admitting more than one byte, in ascending order. These
  /// form the digit positions of the mixed-radix enumeration used by the
  /// key generators.
  std::vector<size_t> variablePositions() const {
    std::vector<size_t> Positions;
    for (size_t I = 0; I != Classes.size(); ++I)
      if (!Classes[I].isSingleton())
        Positions.push_back(I);
    return Positions;
  }

  /// Lowers the exact format into the quad lattice: each class becomes
  /// the join of its members' byte abstractions (Section 3.1).
  KeyPattern abstract() const {
    std::vector<BytePattern> Bytes;
    Bytes.reserve(Classes.size());
    for (const CharSet &Class : Classes)
      Bytes.push_back(Class.abstraction());
    if (isFixedLength())
      return KeyPattern::fixed(std::move(Bytes));
    return KeyPattern::variable(std::move(Bytes), MinLen);
  }

  friend bool operator==(const FormatSpec &A, const FormatSpec &B) {
    return A.MinLen == B.MinLen && A.Classes == B.Classes;
  }

private:
  std::vector<CharSet> Classes;
  size_t MinLen = 0;
};

} // namespace sepe

#endif // SEPE_CORE_FORMAT_SPEC_H
