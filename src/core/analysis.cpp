//===- core/analysis.cpp - Key-format analyses for codegen ---------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/analysis.h"

#include "support/telemetry.h"

#include <algorithm>
#include <cassert>

using namespace sepe;

std::vector<ByteRun> sepe::parseRanges(const KeyPattern &Pattern) {
  std::vector<ByteRun> Runs;
  const size_t N = Pattern.maxLength();
  size_t I = 0;
  while (I != N) {
    const bool Constant = Pattern.byteAt(I).isConstant();
    size_t J = I + 1;
    while (J != N && Pattern.byteAt(J).isConstant() == Constant)
      ++J;
    Runs.push_back(ByteRun{I, J, Constant});
    I = J;
  }
  return Runs;
}

uint64_t sepe::freeMaskAt(const KeyPattern &Pattern, size_t Offset) {
  assert(Offset + 8 <= Pattern.maxLength() && "load reads past the key");
  uint64_t Mask = 0;
  for (size_t J = 0; J != 8; ++J)
    Mask |= static_cast<uint64_t>(Pattern.byteAt(Offset + J).freeMask())
            << (8 * J);
  return Mask;
}

namespace {

/// Restricts \p Word's masks to bytes at key positions >= CoveredEnd, so
/// overlapping loads never extract the same bit twice.
uint64_t maskFromByte(uint64_t Mask, uint32_t LoadOffset, size_t CoveredEnd) {
  if (CoveredEnd <= LoadOffset)
    return Mask;
  const size_t Skipped = std::min<size_t>(CoveredEnd - LoadOffset, 8);
  if (Skipped == 8)
    return 0;
  return Mask & (~uint64_t{0} << (8 * Skipped));
}

LoadWord makeLoad(const KeyPattern &Pattern, uint32_t Offset,
                  size_t CoveredEnd) {
  const uint64_t Free = freeMaskAt(Pattern, Offset);
  return LoadWord{Offset, Free, maskFromByte(Free, Offset, CoveredEnd)};
}

} // namespace

std::vector<LoadWord> sepe::computeLoadsAllBytes(const KeyPattern &Pattern) {
  SEPE_SPAN("synthesis.analysis.loads");
  assert(Pattern.isFixedLength() && "Naive layout requires fixed length");
  const size_t Len = Pattern.maxLength();
  assert(Len >= 8 && "short keys fall back to the standard hash");
  std::vector<LoadWord> Loads;
  size_t CoveredEnd = 0;
  for (size_t Offset = 0; Offset + 8 <= Len; Offset += 8) {
    Loads.push_back(makeLoad(Pattern, static_cast<uint32_t>(Offset),
                             CoveredEnd));
    CoveredEnd = Offset + 8;
  }
  if (Len % 8 != 0) {
    // Pull the final load back so it ends exactly at the key's last byte
    // (Section 3.2.2: "the last load always starts at position n - 8").
    Loads.push_back(makeLoad(Pattern, static_cast<uint32_t>(Len - 8),
                             CoveredEnd));
  }
  return Loads;
}

std::vector<LoadWord>
sepe::computeLoadsSkippingConst(const KeyPattern &Pattern) {
  SEPE_SPAN("synthesis.analysis.loads");
  assert(Pattern.isFixedLength() && "const-skipping layout requires fixed "
                                    "length");
  const size_t Len = Pattern.maxLength();
  assert(Len >= 8 && "short keys fall back to the standard hash");
  std::vector<LoadWord> Loads;
  size_t CoveredEnd = 0;
  for (const ByteRun &Run : parseRanges(Pattern)) {
    if (Run.IsConstant)
      continue;
    size_t Pos = std::max(Run.Begin, CoveredEnd);
    while (Pos < Run.End) {
      // Clamp so the load never reads past the key; the overlap into
      // already-covered bytes is filtered out of NewFreeMask.
      const size_t Offset = std::min(Pos, Len - 8);
      Loads.push_back(makeLoad(Pattern, static_cast<uint32_t>(Offset),
                               CoveredEnd));
      CoveredEnd = Offset + 8;
      Pos = CoveredEnd;
    }
  }
  return Loads;
}

SkipTable sepe::buildSkipTable(const KeyPattern &Pattern) {
  SEPE_SPAN("synthesis.analysis.skip_table");
  const size_t MinLen = Pattern.minLength();
  SkipTable Table;
  std::vector<uint32_t> Offsets;
  std::vector<uint64_t> Masks;
  size_t CoveredEnd = 0;
  for (const ByteRun &Run : parseRanges(Pattern)) {
    if (Run.IsConstant || Run.Begin >= MinLen)
      continue;
    size_t Pos = std::max(Run.Begin, CoveredEnd);
    // Loads must stay inside the guaranteed prefix: every key is at
    // least MinLen bytes long, so a load at MinLen-8 is always safe.
    while (Pos < Run.End && Pos + 8 <= MinLen) {
      Offsets.push_back(static_cast<uint32_t>(Pos));
      Masks.push_back(maskFromByte(freeMaskAt(Pattern, Pos),
                                   static_cast<uint32_t>(Pos), CoveredEnd));
      CoveredEnd = Pos + 8;
      Pos = CoveredEnd;
    }
    if (Pos < Run.End)
      break; // Remaining bytes belong to the tail loop.
  }

  if (Offsets.empty()) {
    Table.TailStart = 0;
    return Table;
  }

  // Figure 8 layout: Skip[0] positions the pointer on the first load;
  // Skip[C] advances it after the C-th load. The final entry advances
  // past the last load so the tail loop starts right behind it.
  Table.Skip.push_back(Offsets.front());
  for (size_t I = 1; I != Offsets.size(); ++I)
    Table.Skip.push_back(Offsets[I] - Offsets[I - 1]);
  Table.Skip.push_back(8);
  Table.Masks = std::move(Masks);
  Table.TailStart = Offsets.back() + 8;
  return Table;
}
