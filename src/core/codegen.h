//===- core/codegen.h - Emit C++ source for a HashPlan ---------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits standalone C++ source code for a HashPlan: a functor struct
/// compatible with std::unordered_map (Figure 5c/5d), in the style of
/// the paper's keysynth tool. Three targets are supported: x86 (BMI2
/// `_pext_u64`, AES-NI `_mm_aesenc_si128`), aarch64 (NEON AESE/AESMC,
/// software bit-gather in lieu of the unavailable `bext`), and a fully
/// portable flavor.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CORE_CODEGEN_H
#define SEPE_CORE_CODEGEN_H

#include "core/plan.h"

#include <array>
#include <string>

namespace sepe {

/// Instruction set the emitted code is specialized for.
enum class Target { X86, AArch64, Portable };

/// Human-readable target name.
const char *targetName(Target T);

struct CodegenOptions {
  Target Isa = Target::X86;
  /// Name of the emitted struct; when empty a name is derived from the
  /// plan's family ("SepeOffXorHash", ...).
  std::string StructName;
  /// Also emit an extern "C" wrapper `uint64_t <name>_hash(const char*,
  /// size_t)`, so the generated code can be loaded as a shared object
  /// (used by the end-to-end tests).
  bool EmitCWrapper = false;
};

/// Emits the helper preamble (loads, pext, AES round) shared by all
/// functions of one target. Idempotent per translation unit thanks to an
/// include guard macro.
std::string emitPreamble(Target Isa);

/// Emits one functor struct for \p Plan. Does not include the preamble.
std::string emitHashFunction(const HashPlan &Plan,
                             const CodegenOptions &Options = {});

/// Emits a complete translation unit: preamble plus one functor per
/// plan.
std::string emitTranslationUnit(const std::vector<HashPlan> &Plans,
                                const CodegenOptions &Options = {});

} // namespace sepe

#endif // SEPE_CORE_CODEGEN_H
