//===- core/inference.h - Pattern inference from key examples --*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.1: infer a KeyPattern from example keys by folding the quad
/// join over every key. This is the algorithm behind the paper's
/// `keybuilder` tool (Figure 5a).
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CORE_INFERENCE_H
#define SEPE_CORE_INFERENCE_H

#include "core/key_pattern.h"

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace sepe {

/// Folds the quad-semilattice join over \p Keys: position I of the result
/// is the join of byte I of every key, with keys shorter than I
/// contributing top (Example 3.4). An empty example set yields an empty
/// pattern.
KeyPattern inferPattern(const std::vector<std::string> &Keys);

/// Incremental version of inferPattern: maintains the running join so
/// examples can be streamed (used by the keybuilder tool).
class PatternBuilder {
public:
  /// Joins one more example key into the running pattern.
  void addKey(std::string_view Key);

  /// Number of keys observed so far.
  size_t keyCount() const { return Count; }

  /// The pattern covering all keys seen so far.
  KeyPattern pattern() const;

private:
  std::vector<BytePattern> Bytes;
  size_t MinLen = 0;
  size_t MaxLen = 0;
  size_t Count = 0;
};

/// Reads one key per line from \p In (dropping a trailing '\r' if
/// present, so Windows key files work) and infers their pattern. Empty
/// lines are skipped.
KeyPattern inferPatternFromStream(std::istream &In);

} // namespace sepe

#endif // SEPE_CORE_INFERENCE_H
