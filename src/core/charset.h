//===- core/charset.h - Exact set of byte values ----------------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An exact set of byte values, used for the precise side of the pipeline:
/// the regex parser produces CharSets, the key generators enumerate them,
/// and the quad abstraction (BytePattern) is derived by joining their
/// members.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_CORE_CHARSET_H
#define SEPE_CORE_CHARSET_H

#include "core/byte_pattern.h"

#include <bitset>
#include <cassert>
#include <cstdint>
#include <string>

namespace sepe {

/// A set of byte values with rank/select style queries so a set can be
/// used as a digit alphabet in mixed-radix key generation.
class CharSet {
public:
  CharSet() = default;

  /// The singleton set {Byte}.
  static CharSet singleton(uint8_t Byte) {
    CharSet Set;
    Set.Bits.set(Byte);
    return Set;
  }

  /// The inclusive range [Lo, Hi].
  static CharSet range(uint8_t Lo, uint8_t Hi) {
    assert(Lo <= Hi && "inverted character range");
    CharSet Set;
    for (unsigned Byte = Lo; Byte <= Hi; ++Byte)
      Set.Bits.set(Byte);
    return Set;
  }

  /// The set of all 256 byte values.
  static CharSet any() {
    CharSet Set;
    Set.Bits.set();
    return Set;
  }

  void insert(uint8_t Byte) { Bits.set(Byte); }

  void insertRange(uint8_t Lo, uint8_t Hi) {
    assert(Lo <= Hi && "inverted character range");
    for (unsigned Byte = Lo; Byte <= Hi; ++Byte)
      Bits.set(Byte);
  }

  CharSet &operator|=(const CharSet &Other) {
    Bits |= Other.Bits;
    return *this;
  }

  bool contains(uint8_t Byte) const { return Bits.test(Byte); }

  /// Number of members.
  size_t size() const { return Bits.count(); }

  bool empty() const { return Bits.none(); }

  /// True when exactly one byte is admitted.
  bool isSingleton() const { return Bits.count() == 1; }

  /// The \p Rank-th smallest member (0-based). Precondition:
  /// Rank < size(). Linear scan; the alphabet is at most 256 entries.
  uint8_t nth(size_t Rank) const {
    assert(Rank < size() && "rank out of range");
    for (unsigned Byte = 0; Byte != 256; ++Byte) {
      if (!Bits.test(Byte))
        continue;
      if (Rank == 0)
        return static_cast<uint8_t>(Byte);
      --Rank;
    }
    assert(false && "unreachable: rank was checked against size");
    return 0;
  }

  /// The rank of \p Byte among the members (inverse of nth). Precondition:
  /// contains(Byte).
  size_t rankOf(uint8_t Byte) const {
    assert(contains(Byte) && "byte not in set");
    size_t Rank = 0;
    for (unsigned B = 0; B != Byte; ++B)
      if (Bits.test(B))
        ++Rank;
    return Rank;
  }

  /// The smallest member. Precondition: !empty().
  uint8_t min() const { return nth(0); }

  /// The largest member. Precondition: !empty().
  uint8_t max() const { return nth(size() - 1); }

  /// The join of the quad abstractions of every member: the BytePattern
  /// the paper's lattice assigns to this position.
  BytePattern abstraction() const {
    assert(!empty() && "abstracting an empty character set");
    bool First = true;
    BytePattern Result;
    for (unsigned Byte = 0; Byte != 256; ++Byte) {
      if (!Bits.test(Byte))
        continue;
      const BytePattern Single = BytePattern::fromByte(
          static_cast<uint8_t>(Byte));
      Result = First ? Single : join(Result, Single);
      First = false;
      if (Result.isTop())
        break;
    }
    return Result;
  }

  friend bool operator==(const CharSet &A, const CharSet &B) {
    return A.Bits == B.Bits;
  }

private:
  std::bitset<256> Bits;
};

} // namespace sepe

#endif // SEPE_CORE_CHARSET_H
