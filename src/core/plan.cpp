//===- core/plan.cpp - IR for synthesized hash functions -----------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/plan.h"

#include <cstdio>

using namespace sepe;

const char *sepe::familyName(HashFamily Family) {
  switch (Family) {
  case HashFamily::Naive:
    return "Naive";
  case HashFamily::OffXor:
    return "OffXor";
  case HashFamily::Aes:
    return "Aes";
  case HashFamily::Pext:
    return "Pext";
  }
  return "<invalid>";
}

size_t HashPlan::codeSizeEstimate() const {
  // One load/extract/combine group per step plus a fixed prologue; the
  // skip-table path adds its table and the two loops.
  size_t Size = 64;
  Size += Steps.size() * 48;
  Size += Skip.Skip.size() * 8 + Skip.Masks.size() * 16;
  return Size;
}

std::string HashPlan::str() const {
  std::string Out;
  char Buffer[128];
  std::snprintf(Buffer, sizeof(Buffer), "plan %s len=[%u,%u]%s%s\n",
                familyName(Family), MinKeyLen, MaxKeyLen,
                FallbackToStl ? " fallback" : "",
                PartialLoad ? " partial" : "");
  Out += Buffer;
  for (const PlanStep &S : Steps) {
    std::snprintf(Buffer, sizeof(Buffer),
                  "  load +%u mask=0x%016llx shift=%u\n", S.Offset,
                  static_cast<unsigned long long>(S.Mask), S.Shift);
    Out += Buffer;
  }
  if (!Skip.Skip.empty()) {
    Out += "  skip =";
    for (uint32_t S : Skip.Skip) {
      std::snprintf(Buffer, sizeof(Buffer), " %u", S);
      Out += Buffer;
    }
    std::snprintf(Buffer, sizeof(Buffer), " tail=%u\n", Skip.TailStart);
    Out += Buffer;
  }
  return Out;
}
