//===- core/jit.cpp - Attach-time x86-64 JIT for HashPlans ---------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
//
// The emitter is a few hundred lines of direct instruction encoding, in
// the hash-prospector style: no assembler framework, just the handful
// of x86-64 forms the plan kernels need, each encoded by a dedicated
// method whose bytes were checked against an external assembler.
//
// Encoding notes (all operations are 64-bit, so REX.W is always set):
//
//   mov   r64, [base+disp]   REX.W 8B /r
//   mov   [base+disp], r64   REX.W 89 /r
//   movzx r64, byte [b+d]    REX.W 0F B6 /r        (future byte loads)
//   xor   r64, [base+disp]   REX.W 33 /r
//   xor   r64, r64           REX.W 31 /r
//   imul  r64, r64           REX.W 0F AF /r        (future mixers)
//   mov   r64, imm64         REX.W B8+rd imm64
//   rol   r64, imm8          REX.W C1 /0 ib
//   add/sub/cmp r64, imm8    REX.W 83 /0|/5|/7 ib
//   test  r64, r64           REX.W 85 /r
//   dec   r64                REX.W FF /1
//   pext  r64, r64, r64      VEX.NDS.LZ.F3.0F38.W1 F5 /r
//
// Memory operands always carry an explicit disp8/disp32 (mod is never
// 00), which sidesteps the RBP/R13 special case; RSP/R12 are never used
// as bases, so no SIB bytes are needed anywhere.
//
//===----------------------------------------------------------------------===//

#include "core/jit.h"

#include "support/cpu_features.h"
#include "support/telemetry.h"
#include "support/trace.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if defined(__x86_64__) && defined(__linux__) && !defined(SEPE_DISABLE_JIT)
#define SEPE_EXEC_JIT 1
#include <sys/mman.h>
#include <unistd.h>
#endif

using namespace sepe;

namespace {

/// Where a std::string_view keeps its data pointer, probed at runtime
/// instead of assuming the libstdc++ {size_t, const char *} layout: a
/// known view is copied into raw words and the word equal to the buffer
/// address names the offset. SIZE_MAX (neither word matched — a
/// hypothetical packed or reordered ABI) disables the JIT entirely.
size_t svDataOffset() {
  static const size_t Off = [] {
    static_assert(sizeof(std::string_view) == 2 * sizeof(uintptr_t),
                  "batch kernel assumes a two-word string_view");
    static const char Buf[2] = {'x', '\0'};
    const std::string_view Sv(Buf, 1);
    uintptr_t Words[2];
    std::memcpy(Words, &Sv, sizeof(Words));
    if (Words[0] == reinterpret_cast<uintptr_t>(Buf))
      return size_t{0};
    if (Words[1] == reinterpret_cast<uintptr_t>(Buf))
      return sizeof(uintptr_t);
    return SIZE_MAX;
  }();
  return Off;
}

/// The SEPE_JIT environment override, read once (mirroring
/// SEPE_TELEMETRY_ENABLED): absent or any other value leaves the JIT
/// on; "0"/"off"/"false" (case-insensitive) pins the forced-fallback
/// story at runtime the way -DSEPE_DISABLE_JIT does at compile time.
bool jitRuntimeEnabled() {
  static const bool Enabled = [] {
    const char *Val = std::getenv("SEPE_JIT");
    if (!Val)
      return true;
    std::string Lower(Val);
    for (char &C : Lower)
      C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    return Lower != "0" && Lower != "off" && Lower != "false";
  }();
  return Enabled;
}

#if defined(SEPE_EXEC_JIT)

/// Register numbers as ModRM/REX encode them.
enum Reg : unsigned {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

/// Condition codes for jcc (the 0F 8x second opcode byte).
enum Cond : uint8_t { JB = 0x82, JZ = 0x84, JNZ = 0x85 };

class Assembler {
public:
  std::vector<uint8_t> Code;

  size_t size() const { return Code.size(); }

  void emit8(uint8_t B) { Code.push_back(B); }
  void emit32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      emit8(static_cast<uint8_t>(V >> (8 * I)));
  }
  void emit64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      emit8(static_cast<uint8_t>(V >> (8 * I)));
  }

  /// REX.W prefix; R extends the reg field, B the r/m (or opcode-reg)
  /// field. X is never needed — no SIB, no index registers.
  void rexW(unsigned Reg, unsigned Base) {
    emit8(static_cast<uint8_t>(0x48 | ((Reg >> 3) << 2) | (Base >> 3)));
  }

  /// ModRM for [Base + Disp]: always an explicit disp8 or disp32.
  void memOperand(unsigned Reg, unsigned Base, uint32_t Disp) {
    assert((Base & 7) != RSP && "rsp/r12 bases need a SIB byte");
    if (Disp <= 0x7F) {
      emit8(static_cast<uint8_t>(0x40 | ((Reg & 7) << 3) | (Base & 7)));
      emit8(static_cast<uint8_t>(Disp));
    } else {
      emit8(static_cast<uint8_t>(0x80 | ((Reg & 7) << 3) | (Base & 7)));
      emit32(Disp);
    }
  }

  void regOperand(unsigned Reg, unsigned Rm) {
    emit8(static_cast<uint8_t>(0xC0 | ((Reg & 7) << 3) | (Rm & 7)));
  }

  /// mov Dst, qword [Base + Disp]
  void loadQ(unsigned Dst, unsigned Base, uint32_t Disp) {
    rexW(Dst, Base);
    emit8(0x8B);
    memOperand(Dst, Base, Disp);
  }

  /// movzx Dst, byte [Base + Disp] — kept for future byte-granular
  /// families; unused by the xor/pext kernels.
  void loadByteZx(unsigned Dst, unsigned Base, uint32_t Disp) {
    rexW(Dst, Base);
    emit8(0x0F);
    emit8(0xB6);
    memOperand(Dst, Base, Disp);
  }

  /// mov qword [Base + Disp], Src
  void storeQ(unsigned Base, uint32_t Disp, unsigned Src) {
    rexW(Src, Base);
    emit8(0x89);
    memOperand(Src, Base, Disp);
  }

  /// xor Dst, qword [Base + Disp]
  void xorLoadQ(unsigned Dst, unsigned Base, uint32_t Disp) {
    rexW(Dst, Base);
    emit8(0x33);
    memOperand(Dst, Base, Disp);
  }

  /// xor Dst, Src
  void xorReg(unsigned Dst, unsigned Src) {
    rexW(Src, Dst);
    emit8(0x31);
    regOperand(Src, Dst);
  }

  /// imul Dst, Src — kept for future multiply mixers.
  void imulReg(unsigned Dst, unsigned Src) {
    rexW(Dst, Src);
    emit8(0x0F);
    emit8(0xAF);
    regOperand(Dst, Src);
  }

  /// movabs Dst, Imm
  void movImm64(unsigned Dst, uint64_t Imm) {
    emit8(static_cast<uint8_t>(0x48 | (Dst >> 3)));
    emit8(static_cast<uint8_t>(0xB8 | (Dst & 7)));
    emit64(Imm);
  }

  /// rol Dst, Imm — elided when the rotate is a no-op, matching
  /// std::rotl's modular count.
  void rolImm(unsigned Dst, unsigned Imm) {
    Imm &= 63;
    if (Imm == 0)
      return;
    rexW(0, Dst);
    emit8(0xC1);
    regOperand(0, Dst);
    emit8(static_cast<uint8_t>(Imm));
  }

  void addImm8(unsigned Dst, uint8_t Imm) { aluImm8(0, Dst, Imm); }
  void subImm8(unsigned Dst, uint8_t Imm) { aluImm8(5, Dst, Imm); }
  void cmpImm8(unsigned Dst, uint8_t Imm) { aluImm8(7, Dst, Imm); }

  /// test A, B
  void testReg(unsigned A, unsigned B) {
    rexW(B, A);
    emit8(0x85);
    regOperand(B, A);
  }

  /// dec Dst
  void decReg(unsigned Dst) {
    rexW(0, Dst);
    emit8(0xFF);
    regOperand(1, Dst);
  }

  void push(unsigned R) {
    if (R >= 8)
      emit8(0x41);
    emit8(static_cast<uint8_t>(0x50 | (R & 7)));
  }

  void pop(unsigned R) {
    if (R >= 8)
      emit8(0x41);
    emit8(static_cast<uint8_t>(0x58 | (R & 7)));
  }

  void ret() { emit8(0xC3); }

  /// pext Dst, Src, Mask. Three-byte VEX: byte 1 carries inverted
  /// R/X/B and selects the 0F38 map, byte 2 is W=1 | ~vvvv (the source
  /// value) | L=0 | pp=F3.
  void pext(unsigned Dst, unsigned Src, unsigned Mask) {
    emit8(0xC4);
    emit8(static_cast<uint8_t>((Dst >= 8 ? 0 : 0x80) | 0x40 |
                               (Mask >= 8 ? 0 : 0x20) | 0x02));
    emit8(static_cast<uint8_t>(0x80 | ((~Src & 0xF) << 3) | 0x02));
    emit8(0xF5);
    regOperand(Dst, Mask);
  }

  /// Forward jcc rel32 with the displacement left as a fixup; returns
  /// the fixup position for patch32.
  size_t jcc32(Cond C) {
    emit8(0x0F);
    emit8(C);
    const size_t Fixup = size();
    emit32(0);
    return Fixup;
  }

  /// jnz rel32 to a known (backward) target.
  void jnzTo(size_t Target) {
    emit8(0x0F);
    emit8(JNZ);
    emit32(static_cast<uint32_t>(Target - (size() + 4)));
  }

  /// jmp rel32 to a known (backward) target.
  void jmpTo(size_t Target) {
    emit8(0xE9);
    emit32(static_cast<uint32_t>(Target - (size() + 4)));
  }

  /// Resolves a jcc32 fixup to the current position.
  void patch32(size_t Fixup) {
    const uint32_t Rel = static_cast<uint32_t>(size() - (Fixup + 4));
    for (int I = 0; I != 4; ++I)
      Code[Fixup + I] = static_cast<uint8_t>(Rel >> (8 * I));
  }

  /// Pads to a 16-byte boundary with int3 so a stray jump into the gap
  /// traps instead of sliding.
  void align16() {
    while (size() % 16 != 0)
      emit8(0xCC);
  }

private:
  /// 83 /Op ib group: add/or/adc/sbb/and/sub/xor/cmp by sub-opcode.
  void aluImm8(unsigned Op, unsigned Dst, uint8_t Imm) {
    rexW(0, Dst);
    emit8(0x83);
    regOperand(Op, Dst);
    emit8(Imm);
  }
};

/// One pext step against one key: Scratch = rotl(pext(load, Mask),
/// Shift), folded into Acc (or becoming Acc on the first step). The
/// mask is expected in MaskReg already — the batch kernel loads it once
/// per step for all four lanes.
void emitPextStep(Assembler &A, unsigned Acc, unsigned Base, unsigned MaskReg,
                  unsigned Scratch, const PlanStep &St, bool First) {
  A.loadQ(Scratch, Base, St.Offset);
  if (First) {
    A.pext(Acc, Scratch, MaskReg);
    A.rolImm(Acc, St.Shift);
  } else {
    A.pext(Scratch, Scratch, MaskReg);
    A.rolImm(Scratch, St.Shift);
    A.xorReg(Acc, Scratch);
  }
}

/// The straight-line one-key body, result in RAX — the whole single-key
/// entry point, and the batch kernel's tail. Base holds the key data
/// pointer; MaskReg/Scratch are clobbered (pext family only).
void emitSingleBody(Assembler &A, const HashPlan &Plan, unsigned Base,
                    unsigned MaskReg, unsigned Scratch) {
  const std::vector<PlanStep> &Steps = Plan.Steps;
  if (Plan.Family == HashFamily::Pext) {
    for (size_t S = 0; S != Steps.size(); ++S) {
      A.movImm64(MaskReg, Steps[S].Mask);
      emitPextStep(A, RAX, Base, MaskReg, Scratch, Steps[S], S == 0);
    }
    return;
  }
  // Naive/OffXor: a pure load-xor chain, exactly evalFixedXor.
  A.loadQ(RAX, Base, Steps[0].Offset);
  for (size_t S = 1; S != Steps.size(); ++S)
    A.xorLoadQ(RAX, Base, Steps[S].Offset);
}

/// The batch entry point: four keys per main-loop iteration with the
/// step sequence interleaved across lanes (the JIT rendering of the
/// interleaved scalar kernels), then a per-key tail. Arguments arrive
/// as (plan ignored) rdi, keys rsi, out rdx, n rcx; SvOff is the probed
/// data-pointer offset inside std::string_view.
void emitBatchKernel(Assembler &A, const HashPlan &Plan, size_t SvOff) {
  const std::vector<PlanStep> &Steps = Plan.Steps;
  const unsigned Acc[4] = {RAX, RBX, R12, R13};
  const unsigned Ptr[4] = {R8, R9, R10, R11};

  A.push(RBX);
  A.push(R12);
  A.push(R13);
  A.push(R14);
  A.push(R15);

  const size_t MainLoop = A.size();
  A.cmpImm8(RCX, 4);
  const size_t ToTail = A.jcc32(JB);
  for (unsigned K = 0; K != 4; ++K)
    A.loadQ(Ptr[K], RSI, K * sizeof(std::string_view) + SvOff);
  if (Plan.Family == HashFamily::Pext) {
    for (size_t S = 0; S != Steps.size(); ++S) {
      // One movabs of the step mask serves all four lanes; scratch
      // alternates r14/r15 so adjacent lanes' loads overlap.
      A.movImm64(RDI, Steps[S].Mask);
      for (unsigned K = 0; K != 4; ++K)
        emitPextStep(A, Acc[K], Ptr[K], RDI, (K & 1) ? R15 : R14, Steps[S],
                     S == 0);
    }
  } else {
    for (unsigned K = 0; K != 4; ++K)
      A.loadQ(Acc[K], Ptr[K], Steps[0].Offset);
    for (size_t S = 1; S != Steps.size(); ++S)
      for (unsigned K = 0; K != 4; ++K)
        A.xorLoadQ(Acc[K], Ptr[K], Steps[S].Offset);
  }
  for (unsigned K = 0; K != 4; ++K)
    A.storeQ(RDX, K * 8, Acc[K]);
  A.addImm8(RSI, 4 * sizeof(std::string_view));
  A.addImm8(RDX, 4 * 8);
  A.subImm8(RCX, 4);
  A.jmpTo(MainLoop);

  A.patch32(ToTail);
  A.testReg(RCX, RCX);
  const size_t ToDone = A.jcc32(JZ);
  const size_t TailLoop = A.size();
  A.loadQ(R8, RSI, SvOff);
  emitSingleBody(A, Plan, R8, RDI, R14);
  A.storeQ(RDX, 0, RAX);
  A.addImm8(RSI, sizeof(std::string_view));
  A.addImm8(RDX, 8);
  A.decReg(RCX);
  A.jnzTo(TailLoop);

  A.patch32(ToDone);
  A.pop(R15);
  A.pop(R14);
  A.pop(R13);
  A.pop(R12);
  A.pop(RBX);
  A.ret();
}

#endif // SEPE_EXEC_JIT

} // namespace

bool sepe::jitCompiledIn() {
#if defined(SEPE_EXEC_JIT)
  return true;
#else
  return false;
#endif
}

bool sepe::jitAvailable() {
  return jitCompiledIn() && jitRuntimeEnabled() && cpuFeatures().Bmi2;
}

bool sepe::jitSupportsPlan(const HashPlan &Plan) {
  if (!Plan.FixedLength || Plan.PartialLoad || Plan.FallbackToStl)
    return false;
  if (Plan.Family != HashFamily::Naive && Plan.Family != HashFamily::OffXor &&
      Plan.Family != HashFamily::Pext)
    return false;
  if (Plan.Steps.empty() || Plan.Steps.size() > 16)
    return false;
  return svDataOffset() != SIZE_MAX;
}

JitProgram::~JitProgram() {
#if defined(SEPE_EXEC_JIT)
  if (Mapping != nullptr) {
    SEPE_TRACE_INSTANT(JitRetire, 0, CodeLen);
    munmap(Mapping, MapLen);
  }
#endif
}

std::shared_ptr<const JitProgram>
sepe::compileJitProgram(const HashPlan &Plan) {
  if (!jitAvailable() || !jitSupportsPlan(Plan))
    return nullptr;
#if defined(SEPE_EXEC_JIT)
  SEPE_SPAN("jit.compile");
  SEPE_TRACE_SPAN(TraceSpan, JitCompile, 0);

  Assembler A;
  // Single-key entry at offset 0: rdi = plan (ignored), rsi = data,
  // rdx = len (ignored — the plan is fixed-length, offsets are baked).
  emitSingleBody(A, Plan, RSI, RCX, RDX);
  A.ret();
  A.align16();
  const size_t BatchOff = A.size();
  emitBatchKernel(A, Plan, svDataOffset());

  // W^X lifecycle: the buffer is writable only while this function owns
  // it, executable only after the bytes are final, and never both.
  const long Page = sysconf(_SC_PAGESIZE);
  const size_t PageLen = Page > 0 ? static_cast<size_t>(Page) : 4096;
  const size_t MapLen = (A.size() + PageLen - 1) & ~(PageLen - 1);
  void *Map = mmap(nullptr, MapLen, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Map == MAP_FAILED)
    return nullptr;
  std::memcpy(Map, A.Code.data(), A.size());
  if (mprotect(Map, MapLen, PROT_READ | PROT_EXEC) != 0) {
    munmap(Map, MapLen);
    return nullptr;
  }

  std::shared_ptr<JitProgram> Prog(new JitProgram());
  Prog->Mapping = Map;
  Prog->MapLen = MapLen;
  Prog->CodeLen = A.size();
  Prog->EvalEntry = reinterpret_cast<JitProgram::EvalFn>(Map);
  Prog->BatchEntry = reinterpret_cast<JitProgram::BatchFn>(
      static_cast<uint8_t *>(Map) + BatchOff);

  SEPE_COUNT("jit.attach.programs");
  SEPE_RECORD("jit.attach.code_bytes", A.size());
  TraceSpan.setArg(A.size());
  return Prog;
#else
  return nullptr;
#endif
}
