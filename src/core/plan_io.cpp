//===- core/plan_io.cpp - HashPlan (de)serialization ----------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/plan_io.h"

#include <charconv>
#include <cstdio>
#include <vector>

using namespace sepe;

namespace {

constexpr const char *Magic = "sepe-plan v1";

void appendLine(std::string &Out, const std::string &Line) {
  Out += Line;
  Out += '\n';
}

std::string hex64(uint64_t Value) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "0x%016llx",
                static_cast<unsigned long long>(Value));
  return Buffer;
}

/// Splits \p Text into whitespace-separated tokens.
std::vector<std::string_view> tokenize(std::string_view Line) {
  std::vector<std::string_view> Tokens;
  size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && Line[I] == ' ')
      ++I;
    const size_t Begin = I;
    while (I < Line.size() && Line[I] != ' ')
      ++I;
    if (I > Begin)
      Tokens.push_back(Line.substr(Begin, I - Begin));
  }
  return Tokens;
}

bool parseU64(std::string_view Token, uint64_t &Out) {
  int Base = 10;
  if (Token.size() > 2 && Token[0] == '0' &&
      (Token[1] == 'x' || Token[1] == 'X')) {
    Token.remove_prefix(2);
    Base = 16;
  }
  const auto [End, Err] =
      std::from_chars(Token.data(), Token.data() + Token.size(), Out, Base);
  return Err == std::errc() && End == Token.data() + Token.size();
}

Error lineError(size_t LineNo, const std::string &Message) {
  return Error{"line " + std::to_string(LineNo) + ": " + Message,
               std::string::npos};
}

} // namespace

std::string sepe::serializePlan(const HashPlan &Plan) {
  std::string Out;
  appendLine(Out, Magic);
  appendLine(Out, std::string("family ") + familyName(Plan.Family));
  appendLine(Out, "len " + std::to_string(Plan.MinKeyLen) + " " +
                      std::to_string(Plan.MaxKeyLen));

  std::string Flags = "flags";
  if (Plan.FallbackToStl)
    Flags += " fallback";
  if (Plan.PartialLoad)
    Flags += " partial";
  if (Plan.Bijective)
    Flags += " bijective";
  if (!Plan.FixedLength)
    Flags += " variable";
  appendLine(Out, Flags);
  appendLine(Out, "freebits " + std::to_string(Plan.FreeBits));

  for (const PlanStep &S : Plan.Steps)
    appendLine(Out, "step " + std::to_string(S.Offset) + " " +
                        hex64(S.Mask) + " " + std::to_string(S.Shift));

  if (!Plan.Skip.Skip.empty()) {
    std::string Skip = "skip";
    for (uint32_t S : Plan.Skip.Skip)
      Skip += " " + std::to_string(S);
    appendLine(Out, Skip);
    std::string Masks = "skipmasks";
    for (uint64_t M : Plan.Skip.Masks)
      Masks += " " + hex64(M);
    appendLine(Out, Masks);
    appendLine(Out, "tail " + std::to_string(Plan.Skip.TailStart));
  }
  return Out;
}

Expected<HashPlan> sepe::deserializePlan(std::string_view Text) {
  HashPlan Plan;
  Plan.FixedLength = true;
  bool SawMagic = false, SawFamily = false, SawLen = false;

  size_t LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    const size_t LineEnd = Text.find('\n', Pos);
    std::string_view Line =
        Text.substr(Pos, LineEnd == std::string_view::npos
                             ? std::string_view::npos
                             : LineEnd - Pos);
    Pos = LineEnd == std::string_view::npos ? Text.size() + 1 : LineEnd + 1;
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;

    if (!SawMagic) {
      if (Line != Magic)
        return lineError(LineNo, "expected the 'sepe-plan v1' header");
      SawMagic = true;
      continue;
    }

    const std::vector<std::string_view> Tokens = tokenize(Line);
    if (Tokens.empty())
      continue;
    const std::string_view Key = Tokens[0];

    if (Key == "family") {
      if (Tokens.size() != 2)
        return lineError(LineNo, "family requires one value");
      bool Found = false;
      for (HashFamily F : {HashFamily::Naive, HashFamily::OffXor,
                           HashFamily::Aes, HashFamily::Pext})
        if (Tokens[1] == familyName(F)) {
          Plan.Family = F;
          Found = true;
        }
      if (!Found)
        return lineError(LineNo, "unknown family '" +
                                     std::string(Tokens[1]) + "'");
      SawFamily = true;
    } else if (Key == "len") {
      uint64_t Min = 0, Max = 0;
      if (Tokens.size() != 3 || !parseU64(Tokens[1], Min) ||
          !parseU64(Tokens[2], Max) || Min > Max)
        return lineError(LineNo, "len requires 'min max' with min <= max");
      Plan.MinKeyLen = static_cast<uint32_t>(Min);
      Plan.MaxKeyLen = static_cast<uint32_t>(Max);
      SawLen = true;
    } else if (Key == "flags") {
      for (size_t I = 1; I != Tokens.size(); ++I) {
        if (Tokens[I] == "fallback")
          Plan.FallbackToStl = true;
        else if (Tokens[I] == "partial")
          Plan.PartialLoad = true;
        else if (Tokens[I] == "bijective")
          Plan.Bijective = true;
        else if (Tokens[I] == "variable")
          Plan.FixedLength = false;
        else
          return lineError(LineNo, "unknown flag '" +
                                       std::string(Tokens[I]) + "'");
      }
    } else if (Key == "freebits") {
      uint64_t Bits = 0;
      if (Tokens.size() != 2 || !parseU64(Tokens[1], Bits))
        return lineError(LineNo, "freebits requires one integer");
      Plan.FreeBits = static_cast<unsigned>(Bits);
    } else if (Key == "step") {
      uint64_t Offset = 0, Mask = 0, Shift = 0;
      if (Tokens.size() != 4 || !parseU64(Tokens[1], Offset) ||
          !parseU64(Tokens[2], Mask) || !parseU64(Tokens[3], Shift) ||
          Shift >= 64)
        return lineError(LineNo, "step requires 'offset mask shift<64'");
      Plan.Steps.push_back(PlanStep{static_cast<uint32_t>(Offset), Mask,
                                    static_cast<uint8_t>(Shift)});
    } else if (Key == "skip") {
      for (size_t I = 1; I != Tokens.size(); ++I) {
        uint64_t Value = 0;
        if (!parseU64(Tokens[I], Value))
          return lineError(LineNo, "malformed skip entry");
        Plan.Skip.Skip.push_back(static_cast<uint32_t>(Value));
      }
    } else if (Key == "skipmasks") {
      for (size_t I = 1; I != Tokens.size(); ++I) {
        uint64_t Value = 0;
        if (!parseU64(Tokens[I], Value))
          return lineError(LineNo, "malformed skip mask");
        Plan.Skip.Masks.push_back(Value);
      }
    } else if (Key == "tail") {
      uint64_t Tail = 0;
      if (Tokens.size() != 2 || !parseU64(Tokens[1], Tail))
        return lineError(LineNo, "tail requires one integer");
      Plan.Skip.TailStart = static_cast<uint32_t>(Tail);
    } else {
      return lineError(LineNo,
                       "unknown directive '" + std::string(Key) + "'");
    }
  }

  if (!SawMagic)
    return Error{"empty plan: missing 'sepe-plan v1' header"};
  if (!SawFamily || !SawLen)
    return Error{"incomplete plan: family and len are required"};
  if (!Plan.FixedLength &&
      Plan.Skip.Masks.size() != Plan.Skip.loadCount())
    return Error{"skip table and mask count disagree"};
  if (!Plan.FallbackToStl && Plan.FixedLength && Plan.Steps.empty())
    return Error{"fixed-length plan without steps"};
  return Plan;
}
