//===- tools/sepebench.cpp - Unified suite runner + perf gate -------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One binary that runs the repo's perf-sensitive workloads — the
/// micro_hash families (single and batch paths), the fig13/fig19/fig20
/// experiment replays, and the FlatIndexMap/LowMixTable probe
/// schedules — with warmup plus repeated trials, robust statistics
/// (median, MAD, coefficient of variation; trials beyond 5 MADs of the
/// median are discarded), and, when `perf_event_open` is usable, a
/// PMU-instrumented pass per workload reporting cycles/key, IPC and
/// miss rates. Everything lands in one consolidated BENCH_suite.json
/// through the shared bench envelope.
///
///   sepebench [--trials=N] [--warmup=N] [--full] [--json=FILE]
///             [--keys=SSN,IPv4,...] [--filter=SUBSTR] [--path=RUNG]
///             [--list]
///
/// The second mode is the regression gate:
///
///   sepebench --compare=BASE.json,NEW.json [--noise-k=K]
///             [--abs-floor=X] [--rel-floor=F]
///
/// which diffs two suite reports with noise-aware thresholds (flag
/// only deltas beyond max(abs floor, k * MAD) and a relative floor)
/// and exits 1 on regression, 2 on malformed/mismatched reports —
/// wired into CI as the soft-fail perf-smoke job.
///
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "container/direct_index_map.h"
#include "container/flat_index_map.h"
#include "container/low_mix_table.h"
#include "container/sharded_index_map.h"
#include "gperf/perfect_hash.h"
#include "mphf/mphf.h"
#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "driver/hash_registry.h"
#include "keygen/distributions.h"
#include "keygen/paper_formats.h"
#include "quality/avalanche.h"
#include "runtime/adaptive_hash.h"
#include "runtime/serving_table.h"
#include "stats/descriptive.h"
#include "support/bench_compare.h"
#include "support/json.h"
#include "support/perf_counters.h"
#include "support/telemetry.h"
#include "support/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <regex>
#include <string>
#include <thread>
#include <vector>

using namespace sepe;
using namespace sepe::bench;

namespace {

// --- Options ---------------------------------------------------------------

struct SuiteOptions {
  size_t Trials = 5;
  size_t Warmup = 1;
  bool Full = false;
  bool List = false;
  std::string JsonPath = "BENCH_suite.json";
  /// Scorecard sidecar for the quality/* workloads (written only when
  /// at least one of them ran).
  std::string QualityJsonPath = "BENCH_quality.json";
  std::string TracePath;
  std::string Filter;
  /// Pins the synthesized hashers' batch rung for the hash_* and
  /// adaptive workloads; Auto keeps the usual shape/host dispatch.
  BatchPath Path = BatchPath::Auto;
  /// 0: the fixed {1,2,4,8} ladder (stable workload names for the
  /// baseline compare); N: a single-point ladder {N}.
  size_t Threads = 0;
  std::vector<PaperKey> Keys = {PaperKey::SSN, PaperKey::IPv4,
                                PaperKey::URL1};
  // Comparator mode.
  std::string CompareBase, CompareNew;
  CompareThresholds Thresholds;
};

void printUsage() {
  std::fprintf(
      stderr,
      "usage: sepebench [options]\n"
      "  --trials=N        timed trials per workload (default 5)\n"
      "  --warmup=N        discarded warmup trials (default 1)\n"
      "  --quick           default-sized run (explicit form)\n"
      "  --full            paper-sized run (all 8 key formats, bigger\n"
      "                    workloads)\n"
      "  --keys=SSN,...    restrict the key formats\n"
      "  --filter=REGEX    run only workloads whose name matches REGEX\n"
      "                    (ECMAScript, searched anywhere in the name)\n"
      "  --path=auto|scalar|interleaved|avx2|jit\n"
      "                    pin the synthesized hashers' batch rung\n"
      "                    (default auto; unhonorable pins resolve\n"
      "                    downward like the executor's ladder)\n"
      "  --threads=N       run the shard_scale workloads at N threads\n"
      "                    only (default: the {1,2,4,8} ladder)\n"
      "  --json=FILE       consolidated report (default BENCH_suite.json)\n"
      "  --quality-json=FILE  statistical scorecard for the quality/*\n"
      "                    workloads (default BENCH_quality.json; only\n"
      "                    written when a quality workload ran)\n"
      "  --trace=FILE.json write the flight recorder as Chrome-trace\n"
      "                    JSON after the suite (needs -DSEPE_TRACE=ON\n"
      "                    for non-empty data)\n"
      "  --list            print workload names and exit\n"
      "comparator mode:\n"
      "  --compare=BASE.json,NEW.json   diff two reports; exit 1 on\n"
      "                    regression, 2 on schema/parse errors\n"
      "  --noise-k=K       MAD multiplier for the noise band (default 3)\n"
      "  --abs-floor=X     absolute delta floor, report units "
      "(default 0.05)\n"
      "  --rel-floor=F     relative delta floor (default 0.05)\n");
}

bool parseSuiteOptions(int Argc, char **Argv, SuiteOptions &Options) {
  for (int I = 1; I != Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      std::exit(0);
    } else if (Arg.rfind("--trials=", 0) == 0) {
      Options.Trials = std::max<size_t>(1, std::stoul(Arg.substr(9)));
    } else if (Arg.rfind("--warmup=", 0) == 0) {
      Options.Warmup = std::stoul(Arg.substr(9));
    } else if (Arg == "--quick") {
      Options.Full = false;
    } else if (Arg == "--full") {
      Options.Full = true;
      Options.Keys.assign(AllPaperKeys.begin(), AllPaperKeys.end());
    } else if (Arg.rfind("--keys=", 0) == 0) {
      Options.Keys.clear();
      std::string List = Arg.substr(7);
      size_t Pos = 0;
      while (Pos != std::string::npos) {
        const size_t Comma = List.find(',', Pos);
        const std::string Name = List.substr(
            Pos, Comma == std::string::npos ? Comma : Comma - Pos);
        bool Ok = false;
        const PaperKey Key = paperKeyByName(Name, Ok);
        if (Ok)
          Options.Keys.push_back(Key);
        else
          std::fprintf(stderr, "warning: unknown key type '%s'\n",
                       Name.c_str());
        Pos = Comma == std::string::npos ? Comma : Comma + 1;
      }
    } else if (Arg.rfind("--filter=", 0) == 0) {
      Options.Filter = Arg.substr(9);
    } else if (Arg.rfind("--path=", 0) == 0) {
      const std::string Name = Arg.substr(7);
      if (Name == "auto")
        Options.Path = BatchPath::Auto;
      else if (Name == "scalar")
        Options.Path = BatchPath::Scalar;
      else if (Name == "interleaved")
        Options.Path = BatchPath::Interleaved;
      else if (Name == "avx2")
        Options.Path = BatchPath::Avx2;
      else if (Name == "jit")
        Options.Path = BatchPath::Jit;
      else {
        std::fprintf(stderr, "error: unknown --path '%s'\n", Name.c_str());
        return false;
      }
    } else if (Arg.rfind("--threads=", 0) == 0) {
      Options.Threads = std::max<size_t>(1, std::stoul(Arg.substr(10)));
    } else if (Arg.rfind("--json=", 0) == 0) {
      Options.JsonPath = Arg.substr(7);
    } else if (Arg.rfind("--quality-json=", 0) == 0) {
      Options.QualityJsonPath = Arg.substr(15);
    } else if (Arg.rfind("--trace=", 0) == 0) {
      Options.TracePath = Arg.substr(8);
    } else if (Arg == "--list") {
      Options.List = true;
    } else if (Arg.rfind("--compare=", 0) == 0) {
      const std::string Pair = Arg.substr(10);
      const size_t Comma = Pair.find(',');
      if (Comma == std::string::npos) {
        std::fprintf(stderr,
                     "error: --compare needs BASE.json,NEW.json\n");
        return false;
      }
      Options.CompareBase = Pair.substr(0, Comma);
      Options.CompareNew = Pair.substr(Comma + 1);
    } else if (Arg.rfind("--noise-k=", 0) == 0) {
      Options.Thresholds.NoiseK = std::stod(Arg.substr(10));
    } else if (Arg.rfind("--abs-floor=", 0) == 0) {
      Options.Thresholds.AbsFloor = std::stod(Arg.substr(12));
    } else if (Arg.rfind("--rel-floor=", 0) == 0) {
      Options.Thresholds.RelFloor = std::stod(Arg.substr(12));
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      printUsage();
      return false;
    }
  }
  return true;
}

// --- Workloads -------------------------------------------------------------

/// One suite entry: a closure that runs a single timed trial and
/// returns the value in Unit; UnitsPerTrial feeds cycles/key.
struct SuiteWorkload {
  std::string Name;
  std::string Unit;
  double UnitsPerTrial = 0;
  std::function<double()> Run;
};

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Shared per-format state the hashing workloads capture, built once.
struct FormatFixture {
  PaperKey Key;
  std::shared_ptr<HashFunctionSet> Set;
  std::shared_ptr<std::vector<std::string>> Text;
  std::shared_ptr<std::vector<std::string_view>> Views;
};

FormatFixture makeFixture(PaperKey Key, size_t PoolSize,
                          BatchPath Path = BatchPath::Auto) {
  FormatFixture Fixture;
  Fixture.Key = Key;
  Fixture.Set = std::make_shared<HashFunctionSet>(
      HashFunctionSet::create(Key, IsaLevel::Native, Path));
  KeyGenerator Gen(paperKeyFormat(Key), KeyDistribution::Uniform,
                   0x5ebe + static_cast<uint64_t>(Key));
  Fixture.Text = std::make_shared<std::vector<std::string>>(
      Gen.distinct(PoolSize));
  Fixture.Views = std::make_shared<std::vector<std::string_view>>(
      Fixture.Text->begin(), Fixture.Text->end());
  return Fixture;
}

void addHashWorkloads(std::vector<SuiteWorkload> &Suite,
                      const FormatFixture &Fixture, size_t Passes) {
  const std::vector<HashKind> Kinds = {HashKind::Naive, HashKind::OffXor,
                                       HashKind::Aes, HashKind::Pext,
                                       HashKind::Stl};
  const std::string Format = paperKeyName(Fixture.Key);
  const double Units =
      static_cast<double>(Passes * Fixture.Views->size());
  for (HashKind Kind : Kinds) {
    SuiteWorkload Single;
    Single.Name = "hash_single/" + Format + "/" + hashKindName(Kind);
    Single.Unit = "ns_per_key";
    Single.UnitsPerTrial = Units;
    Single.Run = [Fixture, Kind, Passes, Units] {
      const double Start = nowMs();
      uint64_t Sink = 0;
      Fixture.Set->visit(Kind, [&](const auto &Hasher) {
        for (size_t P = 0; P != Passes; ++P)
          for (const std::string_view V : *Fixture.Views)
            Sink += static_cast<uint64_t>(Hasher(V));
      });
      asm volatile("" : : "r"(Sink) : "memory");
      return (nowMs() - Start) * 1e6 / Units;
    };
    Suite.push_back(std::move(Single));

    SuiteWorkload Batch;
    Batch.Name = "hash_batch/" + Format + "/" + hashKindName(Kind);
    Batch.Unit = "ns_per_key";
    Batch.UnitsPerTrial = Units;
    Batch.Run = [Fixture, Kind, Passes, Units] {
      std::vector<uint64_t> Out(Fixture.Views->size());
      const double Start = nowMs();
      for (size_t P = 0; P != Passes; ++P) {
        Fixture.Set->hashBatch(Kind, Fixture.Views->data(), Out.data(),
                               Fixture.Views->size());
        asm volatile("" : : "r"(Out.data()) : "memory");
      }
      return (nowMs() - Start) * 1e6 / Units;
    };
    Suite.push_back(std::move(Batch));
  }
}

void addJitWorkloads(std::vector<SuiteWorkload> &Suite,
                     const FormatFixture &Fixture, size_t Passes) {
  // Compiled-vs-interpreted columns for the families the x86-64
  // emitter handles. Each pair pins one hasher to the Jit rung and one
  // to interpreted Scalar over the same plan; on hosts without BMI2 or
  // for plan shapes the emitter rejects, the Jit pin resolves downward,
  // so the workload set stays stable for the comparator and the paired
  // columns simply converge.
  const std::string Format = paperKeyName(Fixture.Key);
  const double Units = static_cast<double>(Passes * Fixture.Views->size());
  for (HashKind Kind : {HashKind::Pext, HashKind::OffXor}) {
    const SynthesizedHash &Attached =
        Fixture.Set->synthesized(syntheticFamily(Kind));
    const std::string Family = Kind == HashKind::Pext ? "pext" : "offxor";
    struct Lane {
      const char *Suffix;
      std::shared_ptr<SynthesizedHash> Hash;
    };
    const Lane Lanes[2] = {
        {"", std::make_shared<SynthesizedHash>(Attached.plan(),
                                               Fixture.Set->isa(),
                                               BatchPath::Jit)},
        {"_interp", std::make_shared<SynthesizedHash>(Attached.plan(),
                                                      Fixture.Set->isa(),
                                                      BatchPath::Scalar)}};
    for (const Lane &L : Lanes) {
      SuiteWorkload Batch;
      Batch.Name = "jit/" + Format + "/" + Family + "_batch" + L.Suffix;
      Batch.Unit = "ns_per_key";
      Batch.UnitsPerTrial = Units;
      Batch.Run = [Fixture, Hash = L.Hash, Passes, Units] {
        std::vector<uint64_t> Out(Fixture.Views->size());
        const double Start = nowMs();
        for (size_t P = 0; P != Passes; ++P) {
          Hash->hashBatch(Fixture.Views->data(), Out.data(),
                          Fixture.Views->size());
          asm volatile("" : : "r"(Out.data()) : "memory");
        }
        return (nowMs() - Start) * 1e6 / Units;
      };
      Suite.push_back(std::move(Batch));

      // Single-key lanes only for Pext: the acceptance metric is the
      // batch kernel, and one single-key pair per format is enough to
      // see the per-call JIT entry overhead.
      if (Kind != HashKind::Pext)
        continue;
      SuiteWorkload Single;
      Single.Name = "jit/" + Format + "/" + Family + "_single" + L.Suffix;
      Single.Unit = "ns_per_key";
      Single.UnitsPerTrial = Units;
      Single.Run = [Fixture, Hash = L.Hash, Passes, Units] {
        const double Start = nowMs();
        uint64_t Sink = 0;
        for (size_t P = 0; P != Passes; ++P)
          for (const std::string_view V : *Fixture.Views)
            Sink += static_cast<uint64_t>((*Hash)(V));
        asm volatile("" : : "r"(Sink) : "memory");
        return (nowMs() - Start) * 1e6 / Units;
      };
      Suite.push_back(std::move(Single));
    }
  }
}

void addAdaptiveWorkloads(std::vector<SuiteWorkload> &Suite,
                          const FormatFixture &Fixture, size_t Passes) {
  const std::string Format = paperKeyName(Fixture.Key);
  const double Units = static_cast<double>(Passes * Fixture.Views->size());

  // Steady state: guarded dispatch over an in-format pool. The guard
  // overhead acceptance number is this against hash_batch/<fmt>/OffXor
  // (same pool, same passes, same batch kernel underneath).
  AdaptiveOptions GuardOptions;
  GuardOptions.Background = false;
  auto Adaptive = std::make_shared<AdaptiveHash>(
      paperKeyFormat(Fixture.Key).abstract(), GuardOptions);
  SuiteWorkload Guard;
  Guard.Name = "adaptive_guard/" + Format;
  Guard.Unit = "ns_per_key";
  Guard.UnitsPerTrial = Units;
  Guard.Run = [Fixture, Adaptive, Passes, Units] {
    std::vector<uint64_t> Out(Fixture.Views->size());
    const double Start = nowMs();
    for (size_t P = 0; P != Passes; ++P) {
      Adaptive->hashBatch(Fixture.Views->data(), Out.data(),
                          Fixture.Views->size());
      asm volatile("" : : "r"(Out.data()) : "memory");
    }
    return (nowMs() - Start) * 1e6 / Units;
  };
  Suite.push_back(std::move(Guard));

  // Drift recovery: wall ms from the first out-of-format batch until a
  // resynthesized generation is live — detector windows, sampling, the
  // joined synthesis, and the hot swap all inside the measured region.
  // Every trial builds a fresh AdaptiveHash so trials are independent.
  const KeyPattern Pattern = paperKeyFormat(Fixture.Key).abstract();
  const DriftProbe Probe = findDriftProbe(Pattern);
  if (!Probe.Valid)
    return; // An all-top pattern cannot be drifted out of.
  auto Drifted =
      std::make_shared<std::vector<std::string>>(*Fixture.Text);
  for (std::string &Key : *Drifted)
    Key[Probe.Pos] = Probe.Byte;
  auto DriftViews = std::make_shared<std::vector<std::string_view>>(
      Drifted->begin(), Drifted->end());
  SuiteWorkload Recovery;
  Recovery.Name = "adaptive_recovery/" + Format;
  Recovery.Unit = "ms";
  Recovery.UnitsPerTrial = 1;
  Recovery.Run = [Pattern, Drifted, DriftViews] {
    AdaptiveOptions Options;
    Options.Background = false;
    Options.Cooldown = std::chrono::milliseconds(0);
    AdaptiveHash Fresh(Pattern, Options);
    std::vector<uint64_t> Out(DriftViews->size());
    const double Start = nowMs();
    bool Swapped = false;
    for (size_t Round = 0; Round != 64 && !Swapped; ++Round) {
      Fresh.hashBatch(DriftViews->data(), Out.data(), DriftViews->size());
      asm volatile("" : : "r"(Out.data()) : "memory");
      if (Fresh.resynthesisPending())
        Swapped = Fresh.pumpResynthesis();
    }
    return nowMs() - Start;
  };
  Suite.push_back(std::move(Recovery));
}

void addExperimentWorkloads(std::vector<SuiteWorkload> &Suite,
                            const FormatFixture &Fixture,
                            size_t Affectations) {
  const std::string Format = paperKeyName(Fixture.Key);
  // fig13 shape: Batched-mode full-schedule replay, U-Map, normal keys.
  ExperimentConfig Config;
  Config.Container = ContainerKind::Map;
  Config.Distribution = KeyDistribution::Normal;
  Config.Spread = 2000;
  Config.Mode = ExecMode::Batched;
  Config.Affectations = Affectations;
  const auto Work =
      std::make_shared<Workload>(makeWorkload(Fixture.Key, Config));
  // One schedule replay is well under a millisecond in quick mode, so
  // a trial averages Reps full replays to push the measured region
  // past timer/scheduler granularity.
  const size_t Reps = 8;
  const double Units =
      static_cast<double>(Reps * Work->Schedule.size());
  for (HashKind Kind : {HashKind::Pext, HashKind::Stl}) {
    SuiteWorkload Entry;
    Entry.Name = std::string("fig13_btime/") + Format + "/" +
                 hashKindName(Kind);
    Entry.Unit = "ms";
    Entry.UnitsPerTrial = Units;
    Entry.Run = [Fixture, Work, Config, Kind, Reps] {
      double Total = 0;
      for (size_t R = 0; R != Reps; ++R)
        Total += runExperiment(*Work, Config, Kind, *Fixture.Set).BTimeMs;
      return Total / static_cast<double>(Reps);
    };
    Suite.push_back(std::move(Entry));
  }

  // fig20 shape: same schedule through every container, one fast hash.
  for (ContainerKind Container : AllContainerKinds) {
    ExperimentConfig PerContainer = Config;
    PerContainer.Container = Container;
    const auto ContainerWork = std::make_shared<Workload>(
        makeWorkload(Fixture.Key, PerContainer));
    SuiteWorkload Entry;
    Entry.Name = std::string("fig20_container/") + Format + "/" +
                 containerKindName(Container);
    Entry.Unit = "ms";
    Entry.UnitsPerTrial =
        static_cast<double>(Reps * ContainerWork->Schedule.size());
    Entry.Run = [Fixture, ContainerWork, PerContainer, Reps] {
      double Total = 0;
      for (size_t R = 0; R != Reps; ++R)
        Total += runExperiment(*ContainerWork, PerContainer,
                               HashKind::OffXor, *Fixture.Set)
                     .BTimeMs;
      return Total / static_cast<double>(Reps);
    };
    Suite.push_back(std::move(Entry));
  }

  // The specialized-storage probe replay (bijective plans only).
  if (Fixture.Set->synthesized(HashFamily::Pext).plan().Bijective) {
    SuiteWorkload Entry;
    Entry.Name = std::string("flat_probe/") + Format;
    Entry.Unit = "ms";
    Entry.UnitsPerTrial = Units;
    Entry.Run = [Fixture, Work, Reps] {
      double Total = 0;
      for (size_t R = 0; R != Reps; ++R) {
        FlatIndexProbeResult Probe;
        if (!runFlatIndexProbe(*Work, *Fixture.Set, Probe))
          return 0.0;
        Total += Probe.BTimeMs;
      }
      return Total / static_cast<double>(Reps);
    };
    Suite.push_back(std::move(Entry));
  }

  // LowMixTable chained inserts + lookups over the pool.
  {
    SuiteWorkload Entry;
    const size_t LowMixReps = 64;
    Entry.Name = std::string("lowmix/") + Format;
    Entry.Unit = "ns_per_op";
    Entry.UnitsPerTrial =
        static_cast<double>(LowMixReps * 2 * Fixture.Text->size());
    Entry.Run = [Fixture, LowMixReps] {
      const double Start = nowMs();
      uint64_t Sink = 0;
      for (size_t R = 0; R != LowMixReps; ++R) {
        LowMixTable<std::string, MurmurStlHash> Table{
            MurmurStlHash{}, 0, Fixture.Text->size()};
        for (const std::string &Key : *Fixture.Text)
          Table.insert(Key);
        for (const std::string &Key : *Fixture.Text)
          Sink += Table.contains(Key) ? 1 : 0;
      }
      asm volatile("" : : "r"(Sink) : "memory");
      return (nowMs() - Start) * 1e6 /
             static_cast<double>(LowMixReps * 2 * Fixture.Text->size());
    };
    Suite.push_back(std::move(Entry));
  }
}

void addScalingWorkload(std::vector<SuiteWorkload> &Suite, bool Full) {
  // fig19 shape: one long-key Pext point (4 KiB of digits).
  const size_t KeyBytes = 4096;
  Expected<FormatSpec> Spec =
      parseRegex("[0-9]{" + std::to_string(KeyBytes) + "}");
  if (!Spec)
    return;
  Expected<HashPlan> Plan = synthesize(Spec->abstract(), HashFamily::Pext);
  if (!Plan)
    return;
  const auto Pext = std::make_shared<SynthesizedHash>(Plan.take());
  KeyGenerator Gen(*Spec, KeyDistribution::Uniform, 0xf19);
  auto Keys = std::make_shared<std::vector<std::string>>();
  for (int I = 0; I != 64; ++I)
    Keys->push_back(Gen.next());
  const size_t Rounds = Full ? 400 : 100;
  SuiteWorkload Entry;
  Entry.Name = "fig19_scaling/4096B/Pext";
  Entry.Unit = "ns_per_key";
  Entry.UnitsPerTrial = static_cast<double>(Rounds * Keys->size());
  Entry.Run = [Pext, Keys, Rounds] {
    const double Start = nowMs();
    uint64_t Sink = 0;
    for (size_t R = 0; R != Rounds; ++R)
      for (const std::string &Key : *Keys)
        Sink += (*Pext)(Key);
    asm volatile("" : : "r"(Sink) : "memory");
    return (nowMs() - Start) * 1e6 /
           static_cast<double>(Rounds * Keys->size());
  };
  Suite.push_back(std::move(Entry));
}

// --- Static-set tier: MPHF construction and direct-index serving -----------

/// Per-format MPHF workloads over the shared 512-key fixture pool:
/// construction time and DirectIndexMap lookups (scalar and batch).
void addMphfWorkloads(std::vector<SuiteWorkload> &Suite,
                      const FormatFixture &Fixture, size_t Passes) {
  const std::string Format = paperKeyName(Fixture.Key);
  const double Units = static_cast<double>(Passes * Fixture.Views->size());

  SuiteWorkload Build;
  Build.Name = "mphf/" + Format + "/build";
  Build.Unit = "ms";
  Build.UnitsPerTrial = static_cast<double>(Fixture.Views->size());
  Build.Run = [Fixture] {
    MphfBuildOptions Options;
    Options.Format = &paperKeyFormat(Fixture.Key);
    const double Start = nowMs();
    Expected<Mphf> F = buildMphf(*Fixture.Views, Options);
    asm volatile("" : : "r"(&F) : "memory");
    return nowMs() - Start;
  };
  Suite.push_back(std::move(Build));

  MphfBuildOptions Options;
  Options.Format = &paperKeyFormat(Fixture.Key);
  Expected<Mphf> F = buildMphf(*Fixture.Views, Options);
  if (!F)
    return;
  std::vector<uint32_t> Vals(Fixture.Views->size());
  for (size_t I = 0; I != Vals.size(); ++I)
    Vals[I] = static_cast<uint32_t>(I);
  auto Map = std::make_shared<DirectIndexMap<uint32_t>>(
      F.take(), Fixture.Views->data(), Vals.data(), Vals.size());
  if (!Map->valid())
    return;

  SuiteWorkload Lookup;
  Lookup.Name = "mphf/" + Format + "/lookup";
  Lookup.Unit = "ns_per_key";
  Lookup.UnitsPerTrial = Units;
  Lookup.Run = [Fixture, Map, Passes, Units] {
    const double Start = nowMs();
    uint64_t Sink = 0;
    for (size_t P = 0; P != Passes; ++P)
      for (const std::string_view V : *Fixture.Views)
        Sink += *Map->find(V);
    asm volatile("" : : "r"(Sink) : "memory");
    return (nowMs() - Start) * 1e6 / Units;
  };
  Suite.push_back(std::move(Lookup));

  SuiteWorkload Batch;
  Batch.Name = "mphf/" + Format + "/lookup_batch";
  Batch.Unit = "ns_per_key";
  Batch.UnitsPerTrial = Units;
  Batch.Run = [Fixture, Map, Passes, Units] {
    std::vector<const uint32_t *> Out(Fixture.Views->size());
    const double Start = nowMs();
    uint64_t Sink = 0;
    for (size_t P = 0; P != Passes; ++P) {
      Sink += Map->findBatch(Fixture.Views->data(), Out.data(),
                             Fixture.Views->size());
      asm volatile("" : : "r"(Out.data()) : "memory");
    }
    asm volatile("" : : "r"(Sink) : "memory");
    return (nowMs() - Start) * 1e6 / Units;
  };
  Suite.push_back(std::move(Batch));
}

/// The fig20-class static-serving scaling group: FlatIndexMap vs the
/// miniature gperf vs the MPHF-backed direct index over one fixed
/// bijective format (SSN, so names are stable and the Flat comparison
/// is valid), at n = 1e2..1e5 (1e6 in --full). Each size reports build
/// time per container and ns/lookup through each container's fastest
/// public lookup path (Flat: scalar find; direct index: findBatch;
/// gperf: batch hash + table load). gperf stops at n = 1000 — beyond
/// its keyword-set regime the association-table search degrades, which
/// is the paper's point about it.
void addMphfScaleWorkloads(std::vector<SuiteWorkload> &Suite, bool Full) {
  const PaperKey Key = PaperKey::SSN;
  const FormatSpec &Format = paperKeyFormat(Key);
  Expected<HashPlan> Plan = synthesize(Format.abstract(), HashFamily::Pext);
  if (!Plan || !Plan->Bijective)
    return;
  const auto FlatHash = std::make_shared<SynthesizedHash>(Plan.take());

  std::vector<size_t> Sizes = {100, 1000, 10000, 100000};
  if (Full)
    Sizes.push_back(1000000);
  for (const size_t N : Sizes) {
    const std::string Group = "mphf_scale/n" + std::to_string(N) + "/";
    KeyGenerator Gen(Format, KeyDistribution::Uniform, 0x3f1e + N);
    // The views alias into the generated strings, so Views co-owns the
    // text (aliasing shared_ptr): any lambda capturing Views keeps the
    // backing corpus alive.
    struct Corpus {
      std::vector<std::string> Strings;
      std::vector<std::string_view> Views;
    };
    auto Backing = std::make_shared<Corpus>();
    Backing->Strings = Gen.distinct(N);
    Backing->Views.assign(Backing->Strings.begin(), Backing->Strings.end());
    std::shared_ptr<std::vector<std::string>> Text(Backing,
                                                   &Backing->Strings);
    std::shared_ptr<std::vector<std::string_view>> Views(Backing,
                                                         &Backing->Views);
    auto Vals = std::make_shared<std::vector<uint32_t>>(N);
    for (size_t I = 0; I != N; ++I)
      (*Vals)[I] = static_cast<uint32_t>(I);
    const size_t Passes = std::max<size_t>(1, 1000000 / N);
    const double Units = static_cast<double>(Passes * N);

    // Build-time lanes. Each trial builds from scratch.
    SuiteWorkload BuildDirect;
    BuildDirect.Name = Group + "build_direct";
    BuildDirect.Unit = "ms";
    BuildDirect.UnitsPerTrial = static_cast<double>(N);
    BuildDirect.Run = [Views, Vals, &Format = paperKeyFormat(Key)] {
      MphfBuildOptions Options;
      Options.Format = &Format;
      const double Start = nowMs();
      Expected<Mphf> F = buildMphf(*Views, Options);
      if (!F)
        return 0.0;
      DirectIndexMap<uint32_t> Map(F.take(), Views->data(), Vals->data(),
                                   Views->size());
      asm volatile("" : : "r"(Map.valid()) : "memory");
      return nowMs() - Start;
    };
    Suite.push_back(std::move(BuildDirect));

    SuiteWorkload BuildFlat;
    BuildFlat.Name = Group + "build_flat";
    BuildFlat.Unit = "ms";
    BuildFlat.UnitsPerTrial = static_cast<double>(N);
    BuildFlat.Run = [Views, Vals, FlatHash] {
      const double Start = nowMs();
      FlatIndexMap<uint32_t> Map(*FlatHash, Views->size());
      Map.insertBatch(Views->data(), Vals->data(), Views->size());
      asm volatile("" : : "r"(Map.size()) : "memory");
      return nowMs() - Start;
    };
    Suite.push_back(std::move(BuildFlat));

    // Lookup lanes over prebuilt containers.
    {
      MphfBuildOptions Options;
      Options.Format = &Format;
      Expected<Mphf> F = buildMphf(*Views, Options);
      if (F) {
        auto Map = std::make_shared<DirectIndexMap<uint32_t>>(
            F.take(), Views->data(), Vals->data(), Views->size());
        if (Map->valid()) {
          SuiteWorkload Direct;
          Direct.Name = Group + "direct";
          Direct.Unit = "ns_per_key";
          Direct.UnitsPerTrial = Units;
          Direct.Run = [Views, Map, Passes, Units] {
            std::vector<const uint32_t *> Out(Views->size());
            const double Start = nowMs();
            uint64_t Sink = 0;
            for (size_t P = 0; P != Passes; ++P) {
              Sink += Map->findBatch(Views->data(), Out.data(),
                                     Views->size());
              asm volatile("" : : "r"(Out.data()) : "memory");
            }
            asm volatile("" : : "r"(Sink) : "memory");
            return (nowMs() - Start) * 1e6 / Units;
          };
          Suite.push_back(std::move(Direct));
        }
      }
    }
    {
      auto Map = std::make_shared<FlatIndexMap<uint32_t>>(*FlatHash,
                                                          Views->size());
      Map->insertBatch(Views->data(), Vals->data(), Views->size());
      SuiteWorkload Flat;
      Flat.Name = Group + "flat";
      Flat.Unit = "ns_per_key";
      Flat.UnitsPerTrial = Units;
      Flat.Run = [Views, Map, Passes, Units] {
        const double Start = nowMs();
        uint64_t Sink = 0;
        for (size_t P = 0; P != Passes; ++P)
          for (const std::string_view V : *Views) {
            const uint32_t *Hit = Map->find(V);
            Sink += Hit ? *Hit : 0;
          }
        asm volatile("" : : "r"(Sink) : "memory");
        return (nowMs() - Start) * 1e6 / Units;
      };
      Suite.push_back(std::move(Flat));
    }
    if (N <= 1000) {
      SuiteWorkload BuildGperf;
      BuildGperf.Name = Group + "build_gperf";
      BuildGperf.Unit = "ms";
      BuildGperf.UnitsPerTrial = static_cast<double>(N);
      BuildGperf.Run = [Text] {
        const double Start = nowMs();
        const PerfectHashFunction Hash = buildPerfectHash(*Text);
        asm volatile("" : : "r"(Hash.trainingCollisions()) : "memory");
        return nowMs() - Start;
      };
      Suite.push_back(std::move(BuildGperf));

      const PerfectHashFunction Hash = buildPerfectHash(*Text);
      // gperf serves from a dense table indexed by its (narrow-range)
      // hash; clamping keeps stray values in range without a branch.
      size_t MaxHash = 0;
      for (const std::string_view V : *Views)
        MaxHash = std::max(MaxHash, Hash(V));
      auto Table = std::make_shared<std::vector<uint32_t>>(MaxHash + 1, 0);
      for (size_t I = 0; I != Views->size(); ++I)
        (*Table)[std::min(Hash((*Views)[I]), MaxHash)] =
            static_cast<uint32_t>(I);
      SuiteWorkload Gperf;
      Gperf.Name = Group + "gperf";
      Gperf.Unit = "ns_per_key";
      Gperf.UnitsPerTrial = Units;
      Gperf.Run = [Views, Hash, Table, MaxHash, Passes, Units] {
        std::vector<uint64_t> Hashes(Views->size());
        const double Start = nowMs();
        uint64_t Sink = 0;
        for (size_t P = 0; P != Passes; ++P) {
          Hash.hashBatch(Views->data(), Hashes.data(), Views->size());
          for (const uint64_t H : Hashes)
            Sink += (*Table)[std::min<size_t>(H, MaxHash)];
        }
        asm volatile("" : : "r"(Sink) : "memory");
        return (nowMs() - Start) * 1e6 / Units;
      };
      Suite.push_back(std::move(Gperf));
    }
  }
}

// --- Multi-threaded scaling: the sharded serving layer ---------------------

/// Spawns \p Threads workers running Body(tid), returns wall ms from
/// first spawn to last join. Trials are macroscopic (hundreds of
/// thousands of ops) so the spawn cost is noise.
double runThreaded(size_t Threads, const std::function<void(size_t)> &Body) {
  std::vector<std::thread> Workers;
  Workers.reserve(Threads);
  const double Start = nowMs();
  for (size_t T = 0; T != Threads; ++T)
    Workers.emplace_back(Body, T);
  for (std::thread &W : Workers)
    W.join();
  return nowMs() - Start;
}

/// Concurrent shard workloads: read-heavy (the batch
/// hash -> partition -> probe pipeline), write-heavy (per-shard lock
/// churn) and a two-lane drift mix through the full ServingTable, each
/// across a thread ladder. The unit is core-ns per op — wall time
/// times thread count over total ops — so it is flat under perfect
/// scaling, degrades when contention bites, and stays lower-is-better
/// for the --compare gate (which thereby gates throughput-per-core).
/// The ladder is fixed at {1,2,4,8} regardless of the host's core
/// count so workload names are stable across machines and baselines;
/// --threads=N collapses it to {N}.
void addShardScaleWorkloads(std::vector<SuiteWorkload> &Suite,
                            const SuiteOptions &Options) {
  const PaperKey Key = PaperKey::SSN; // Fixed format: stable names.
  const FormatSpec Format = paperKeyFormat(Key);
  const KeyPattern Pattern = Format.abstract();
  Expected<HashPlan> Plan = synthesize(Pattern, HashFamily::Pext);
  if (!Plan)
    return;
  HashPlan Taken = Plan.take();
  if (!Taken.Bijective)
    return;
  const SynthesizedHash Hash(std::move(Taken));

  const size_t PoolSize = 4096;
  KeyGenerator Gen(Format, KeyDistribution::Uniform, 0x54a2d);
  auto Text =
      std::make_shared<std::vector<std::string>>(Gen.distinct(PoolSize));
  auto Views = std::make_shared<std::vector<std::string_view>>(
      Text->begin(), Text->end());

  std::vector<size_t> Ladder = {1, 2, 4, 8};
  if (Options.Threads != 0)
    Ladder = {Options.Threads};
  const size_t TotalOps = Options.Full ? (1u << 20) : (1u << 18);

  // Shared pre-populated map: reads don't mutate it and the write mix
  // below balances put/erase, so trials stay comparable.
  auto Map = std::make_shared<ShardedIndexMap<uint64_t>>(Hash, Pattern);
  for (size_t I = 0; I != Views->size(); ++I)
    Map->put((*Views)[I], I);

  for (const size_t Threads : Ladder) {
    SuiteWorkload Read;
    Read.Name = "shard_scale/read_heavy/t" + std::to_string(Threads);
    Read.Unit = "core_ns_per_op";
    Read.UnitsPerTrial = static_cast<double>(TotalOps);
    Read.Run = [Map, Views, Threads, TotalOps] {
      const size_t OpsPerThread = TotalOps / Threads;
      const double Ms = runThreaded(Threads, [&](size_t Tid) {
        uint64_t Out[64];
        uint8_t Found[64];
        uint64_t Sink = 0;
        size_t Pos = (Tid * 977) % Views->size();
        for (size_t Done = 0; Done < OpsPerThread; Done += 64) {
          if (Pos + 64 > Views->size())
            Pos = 0;
          Sink += Map->getBatch(Views->data() + Pos, Out, Found, 64);
          Pos += 64;
        }
        asm volatile("" : : "r"(Sink) : "memory");
      });
      return Ms * 1e6 * Threads / static_cast<double>(TotalOps);
    };
    Suite.push_back(std::move(Read));

    SuiteWorkload Write;
    Write.Name = "shard_scale/write_heavy/t" + std::to_string(Threads);
    Write.Unit = "core_ns_per_op";
    Write.UnitsPerTrial = static_cast<double>(TotalOps);
    Write.Run = [Map, Views, Threads, TotalOps] {
      const size_t OpsPerThread = TotalOps / Threads;
      const double Ms = runThreaded(Threads, [&](size_t Tid) {
        // Balanced put/erase over a rotating window: every key erased
        // is re-inserted two steps later, so the population is steady.
        size_t Pos = (Tid * 1409) % Views->size();
        for (size_t Done = 0; Done != OpsPerThread; ++Done) {
          const std::string_view V = (*Views)[Pos];
          if (Done & 1)
            Map->put(V, Pos);
          else
            Map->erase(V);
          Pos = Pos + 1 == Views->size() ? 0 : Pos + 1;
        }
      });
      return Ms * 1e6 * Threads / static_cast<double>(TotalOps);
    };
    Suite.push_back(std::move(Write));
  }

  // Drift mix: the full two-lane ServingTable with 25% of lookups
  // aimed at out-of-format keys (served by the spill lane). Measures
  // the routed dispatch + lane fallthrough under concurrency, not
  // recovery time (the swap itself is adaptive_recovery's job).
  const DriftProbe Probe = findDriftProbe(Pattern);
  if (!Probe.Valid)
    return;
  auto DriftText = std::make_shared<std::vector<std::string>>(*Text);
  for (std::string &K : *DriftText)
    K[Probe.Pos] = Probe.Byte;
  auto DriftViews = std::make_shared<std::vector<std::string_view>>(
      DriftText->begin(), DriftText->end());
  AdaptiveOptions ServeOptions;
  ServeOptions.Family = HashFamily::Pext;
  ServeOptions.Background = false;
  auto Serve = std::make_shared<ServingTable<uint64_t>>(Pattern,
                                                        ServeOptions);
  for (size_t I = 0; I != Views->size(); ++I) {
    Serve->put((*Views)[I], I);
    Serve->put((*DriftViews)[I], PoolSize + I);
  }
  for (const size_t Threads : Ladder) {
    SuiteWorkload Drift;
    Drift.Name = "shard_scale/drift_mix/t" + std::to_string(Threads);
    Drift.Unit = "core_ns_per_op";
    Drift.UnitsPerTrial = static_cast<double>(TotalOps);
    Drift.Run = [Serve, Views, DriftViews, Threads, TotalOps] {
      const size_t OpsPerThread = TotalOps / Threads;
      const double Ms = runThreaded(Threads, [&](size_t Tid) {
        uint64_t Sink = 0;
        size_t Pos = (Tid * 2741) % Views->size();
        for (size_t Done = 0; Done != OpsPerThread; ++Done) {
          uint64_t V = 0;
          const bool Spill = (Done & 3) == 3; // 25% out-of-format.
          Sink += (Spill ? Serve->get((*DriftViews)[Pos], V)
                         : Serve->get((*Views)[Pos], V))
                      ? 1
                      : 0;
          Pos = Pos + 1 == Views->size() ? 0 : Pos + 1;
        }
        asm volatile("" : : "r"(Sink) : "memory");
      });
      return Ms * 1e6 * Threads / static_cast<double>(TotalOps);
    };
    Suite.push_back(std::move(Drift));
  }
}

// --- Statistical quality scorecard -----------------------------------------

/// Reports collected by the quality/* workloads, keyed by workload
/// name so the scorecard JSON comes out in suite order. The workloads
/// both time the harness (the suite value, in ms) and deposit the
/// measured report here for BENCH_quality.json.
using QualityScorecard = std::map<std::string, quality::QualityReport>;

/// One workload per paper format x synthesized family over the full
/// 8-format matrix (independent of --keys: the scorecard is a
/// correctness surface, not a timing one, and CI asserts floors on
/// every cell). The measurement is deterministic, so re-running it
/// each trial only re-times it; the deposited report is identical.
void addQualityWorkloads(std::vector<SuiteWorkload> &Suite,
                         std::shared_ptr<QualityScorecard> Scorecard) {
  for (PaperKey Key : AllPaperKeys) {
    for (HashFamily Family :
         {HashFamily::Naive, HashFamily::OffXor, HashFamily::Aes,
          HashFamily::Pext}) {
      SuiteWorkload Entry;
      Entry.Name = std::string("quality/") + paperKeyName(Key) + "/" +
                   familyName(Family);
      Entry.Unit = "ms";
      Entry.UnitsPerTrial = 1;
      Entry.Run = [Key, Family, Scorecard,
                   Name = Entry.Name]() -> double {
        const FormatSpec &Format = paperKeyFormat(Key);
        Expected<HashPlan> Plan =
            synthesize(Format.abstract(), Family);
        if (!Plan)
          return 0.0;
        const SynthesizedHash Hash(Plan.take());
        const double Start = nowMs();
        quality::QualityReport Report =
            quality::measureQuality(Format, Hash);
        const double Ms = nowMs() - Start;
        Report.Format = paperKeyName(Key);
        (*Scorecard)[Name] = std::move(Report);
        return Ms;
      };
      Suite.push_back(std::move(Entry));
    }
  }
}

/// Writes the BENCH_quality.json scorecard through the shared bench
/// envelope: one row per quality/* workload that ran.
bool writeQualityScorecard(const std::string &Path,
                           const QualityScorecard &Scorecard) {
  std::FILE *F = openJsonReport(Path, "sepebench-quality");
  if (!F)
    return false;
  std::fprintf(F, "  \"scorecard\": [\n");
  size_t I = 0;
  for (const auto &[Name, Report] : Scorecard)
    std::fprintf(F, "    %s%s\n", Report.toJson().c_str(),
                 ++I == Scorecard.size() ? "" : ",");
  std::fprintf(F, "  ],\n");
  closeJsonReport(F);
  return true;
}

std::vector<SuiteWorkload>
buildSuite(const SuiteOptions &Options,
           std::shared_ptr<QualityScorecard> Scorecard) {
  std::vector<SuiteWorkload> Suite;
  // Each timed trial must be macroscopic (hundreds of microseconds at
  // least) or timer granularity and scheduling transients swamp the
  // per-key estimate; 2000 passes over 512 keys is ~1M hashes/trial.
  const size_t PoolSize = 512;
  const size_t Passes = Options.Full ? 8000 : 2000;
  const size_t Affectations = Options.Full ? 10000 : 2000;
  for (PaperKey Key : Options.Keys) {
    const FormatFixture Fixture = makeFixture(Key, PoolSize, Options.Path);
    addHashWorkloads(Suite, Fixture, Passes);
    addJitWorkloads(Suite, Fixture, Passes);
    addAdaptiveWorkloads(Suite, Fixture, Passes);
    addExperimentWorkloads(Suite, Fixture, Affectations);
    addMphfWorkloads(Suite, Fixture, Passes);
  }
  addScalingWorkload(Suite, Options.Full);
  addShardScaleWorkloads(Suite, Options);
  addMphfScaleWorkloads(Suite, Options.Full);
  addQualityWorkloads(Suite, std::move(Scorecard));
  if (!Options.Filter.empty()) {
    try {
      const std::regex Filter(Options.Filter);
      std::erase_if(Suite, [&](const SuiteWorkload &W) {
        return !std::regex_search(W.Name, Filter);
      });
    } catch (const std::regex_error &E) {
      std::fprintf(stderr, "error: bad --filter regex '%s': %s\n",
                   Options.Filter.c_str(), E.what());
      std::exit(2);
    }
  }
  return Suite;
}

// --- Trial loop + robust stats --------------------------------------------

struct WorkloadResult {
  const SuiteWorkload *Work = nullptr;
  std::vector<double> Trials;
  std::vector<double> Kept;
  double Median = 0, Mad = 0, Cv = 0, Min = 0, Max = 0;
  perf::CounterReading Pmu;
  /// Telemetry registry snapshot of the instrumented pass alone (the
  /// registry is reset before it, so sections don't accumulate across
  /// workloads). The compiled-out shim JSON when -DSEPE_TELEMETRY=OFF.
  std::string Telemetry = telemetry::toJson();
};

/// Robust reduction: median/MAD over all trials, discard trials beyond
/// 5 MADs of the median (|x - med| > 5 * MAD, MAD > 0), then recompute
/// the reported stats over the kept set.
void reduce(WorkloadResult &Result) {
  const double Med = median(Result.Trials);
  const double Mad = medianAbsDeviation(Result.Trials);
  Result.Kept.clear();
  for (double V : Result.Trials)
    if (Mad <= 0 || std::abs(V - Med) <= 5 * Mad)
      Result.Kept.push_back(V);
  if (Result.Kept.empty())
    Result.Kept = Result.Trials;
  Result.Median = median(Result.Kept);
  Result.Mad = medianAbsDeviation(Result.Kept);
  Result.Cv = coefficientOfVariation(Result.Kept);
  Result.Min = *std::min_element(Result.Kept.begin(), Result.Kept.end());
  Result.Max = *std::max_element(Result.Kept.begin(), Result.Kept.end());
}

/// Runs the whole suite with trials interleaved round-robin: every
/// workload's Nth trial happens in the Nth sweep over the suite, so
/// time-varying machine state (frequency ramps, a noisy neighbour
/// mid-run) spreads across every workload's sample instead of landing
/// entirely on whichever workload was executing at that moment — the
/// dominant cross-run drift source for back-to-back compares.
std::vector<WorkloadResult>
runSuiteTrials(const std::vector<SuiteWorkload> &Suite,
               const SuiteOptions &Options, perf::CounterGroup &Counters) {
  std::vector<WorkloadResult> Results(Suite.size());
  for (size_t I = 0; I != Suite.size(); ++I)
    Results[I].Work = &Suite[I];
  for (size_t W = 0; W != Options.Warmup; ++W)
    for (const SuiteWorkload &Work : Suite)
      (void)Work.Run();
  for (size_t T = 0; T != Options.Trials; ++T)
    for (size_t I = 0; I != Suite.size(); ++I)
      Results[I].Trials.push_back(Suite[I].Run());
  for (WorkloadResult &Result : Results) {
    reduce(Result);
    if (Counters.live() || telemetry::compiledIn()) {
      // One extra instrumented pass; its wall time is not a trial, so
      // the PMU read and telemetry recording cannot perturb the
      // reported medians. The registry is reset before the pass so
      // each workload's telemetry section covers that pass alone
      // instead of accumulating across the suite.
      const bool TelemetryWasOn = telemetry::enabled();
      telemetry::resetAll();
      telemetry::setEnabled(true);
      if (Counters.live()) {
        perf::ScopedCounters Scope(Counters, Result.Pmu);
        (void)Result.Work->Run();
      } else {
        (void)Result.Work->Run();
      }
      Result.Telemetry = telemetry::toJson();
      telemetry::setEnabled(TelemetryWasOn);
    }
  }
  return Results;
}

// --- Report ----------------------------------------------------------------

void writeWorkloadJson(std::FILE *F, const WorkloadResult &Result,
                       bool Last) {
  std::fprintf(F,
               "    {\"name\": \"%s\", \"unit\": \"%s\", "
               "\"units_per_trial\": %.0f,\n"
               "     \"median\": %.4f, \"mad\": %.4f, \"cv\": %.4f, "
               "\"min\": %.4f, \"max\": %.4f,\n"
               "     \"trials\": %zu, \"kept\": %zu, \"raw\": [",
               json::escapeString(Result.Work->Name).c_str(),
               json::escapeString(Result.Work->Unit).c_str(),
               Result.Work->UnitsPerTrial, Result.Median, Result.Mad,
               Result.Cv, Result.Min, Result.Max, Result.Trials.size(),
               Result.Kept.size());
  for (size_t I = 0; I != Result.Trials.size(); ++I)
    std::fprintf(F, "%s%.4f", I == 0 ? "" : ", ", Result.Trials[I]);
  std::fprintf(F, "],\n     \"pmu\": %s,\n     \"telemetry\": %s}%s\n",
               Result.Pmu.toJson(Result.Work->UnitsPerTrial).c_str(),
               Result.Telemetry.c_str(), Last ? "" : ",");
}

int runSuite(const SuiteOptions &Options) {
  auto Scorecard = std::make_shared<QualityScorecard>();
  std::vector<SuiteWorkload> Suite = buildSuite(Options, Scorecard);
  if (Options.List) {
    for (const SuiteWorkload &Work : Suite)
      std::printf("%s\n", Work.Name.c_str());
    return 0;
  }

  std::printf("== sepebench ==\n%zu workloads, %zu trials + %zu warmup "
              "each (%s mode)\npmu: %s\n\n",
              Suite.size(), Options.Trials, Options.Warmup,
              Options.Full ? "full" : "quick",
              perf::available() ? "available"
                                : perf::unavailableReason().c_str());

  perf::CounterGroup Counters;
  const std::vector<WorkloadResult> Results =
      runSuiteTrials(Suite, Options, Counters);
  TextTable Table({"Workload", "Unit", "Median", "MAD", "CV", "cyc/unit",
                   "IPC"});
  for (const WorkloadResult &Result : Results) {
    const SuiteWorkload &Work = *Result.Work;
    Table.addRow(
        {Work.Name, Work.Unit, formatDouble(Result.Median, 4),
         formatDouble(Result.Mad, 4), formatDouble(Result.Cv, 3),
         Result.Pmu.Valid
             ? formatDouble(Result.Pmu.cyclesPer(Work.UnitsPerTrial), 1)
             : "-",
         Result.Pmu.Valid ? formatDouble(Result.Pmu.ipc(), 2) : "-"});
  }
  std::printf("%s\n", Table.str().c_str());

  std::FILE *F = openJsonReport(Options.JsonPath, "sepebench");
  if (!F)
    return 1;
  std::fprintf(F, "  \"mode\": \"%s\",\n  \"trials\": %zu,\n"
               "  \"warmup\": %zu,\n  \"pmu_available\": %s,\n"
               "  \"pmu_reason\": \"%s\",\n  \"workloads\": [\n",
               Options.Full ? "full" : "quick", Options.Trials,
               Options.Warmup, perf::available() ? "true" : "false",
               json::escapeString(perf::unavailableReason()).c_str());
  for (size_t I = 0; I != Results.size(); ++I)
    writeWorkloadJson(F, Results[I], I + 1 == Results.size());
  std::fprintf(F, "  ],\n");
  closeJsonReport(F);
  std::printf("wrote %s (%zu workloads)\n", Options.JsonPath.c_str(),
              Results.size());

  if (!Scorecard->empty()) {
    if (writeQualityScorecard(Options.QualityJsonPath, *Scorecard))
      std::printf("wrote %s (%zu scorecard rows)\n",
                  Options.QualityJsonPath.c_str(), Scorecard->size());
    else
      std::fprintf(stderr, "error: cannot write quality scorecard '%s'\n",
                   Options.QualityJsonPath.c_str());
  }

  if (!Options.TracePath.empty()) {
    if (trace::writeChromeTrace(Options.TracePath))
      std::printf("trace written to %s (%llu events, %llu dropped)\n",
                  Options.TracePath.c_str(),
                  static_cast<unsigned long long>(trace::emitted()),
                  static_cast<unsigned long long>(trace::dropped()));
    else
      std::fprintf(stderr, "error: cannot write trace file '%s'\n",
                   Options.TracePath.c_str());
  }
  return 0;
}

// --- Comparator ------------------------------------------------------------

int runCompare(const SuiteOptions &Options) {
  const auto Slurp = [](const std::string &Path,
                        std::string &Out) -> bool {
    std::FILE *F = std::fopen(Path.c_str(), "rb");
    if (!F) {
      std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
      return false;
    }
    char Buffer[4096];
    size_t Got = 0;
    while ((Got = std::fread(Buffer, 1, sizeof(Buffer), F)) != 0)
      Out.append(Buffer, Got);
    std::fclose(F);
    return true;
  };
  std::string BaseText, NewText;
  if (!Slurp(Options.CompareBase, BaseText) ||
      !Slurp(Options.CompareNew, NewText))
    return 2;
  Expected<CompareReport> Report =
      compareSuiteReports(BaseText, NewText, Options.Thresholds);
  if (!Report) {
    std::fprintf(stderr, "error: %s\n", Report.error().Message.c_str());
    return 2;
  }
  std::printf("== sepebench --compare ==\nbase: %s\nnew:  %s\n"
              "thresholds: noise-k %.1f, abs floor %.3f, rel floor "
              "%.1f%%\n\n%s",
              Options.CompareBase.c_str(), Options.CompareNew.c_str(),
              Options.Thresholds.NoiseK, Options.Thresholds.AbsFloor,
              Options.Thresholds.RelFloor * 100, Report->render().c_str());
  return Report->hasRegression() ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  SuiteOptions Options;
  if (!parseSuiteOptions(Argc, Argv, Options))
    return 2;
  if (!Options.CompareBase.empty())
    return runCompare(Options);
  if (!Options.TracePath.empty()) {
    if (!trace::compiledIn())
      std::fprintf(stderr,
                   "warning: --trace requested but this binary was built "
                   "without -DSEPE_TRACE=ON; the trace will be empty\n");
    trace::setEnabled(true);
  }
  return runSuite(Options);
}
