//===- tools/keybuilder.cpp - Infer a regex from example keys ------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's keybuilder tool (Figure 5a): reads one key per line from
/// stdin (or a file argument), folds the quad-semilattice join over the
/// examples, and prints the inferred regular expression — ready to pipe
/// into keysynth.
///
//===----------------------------------------------------------------------===//

#include "core/inference.h"
#include "core/regex_printer.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

namespace {

void printUsage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [file_with_keys]\n"
               "  Reads one example key per line (stdin when no file is\n"
               "  given) and prints a regular expression recognizing the\n"
               "  keys' byte format.\n"
               "  options:\n"
               "    --pattern   also print the quad-lattice pattern\n",
               Argv0);
}

} // namespace

int main(int Argc, char **Argv) {
  bool ShowPattern = false;
  std::string FileName;
  for (int I = 1; I != Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printUsage(Argv[0]);
      return 0;
    }
    if (Arg == "--pattern") {
      ShowPattern = true;
      continue;
    }
    if (!FileName.empty()) {
      std::fprintf(stderr, "error: multiple input files\n");
      return 1;
    }
    FileName = Arg;
  }

  sepe::KeyPattern Pattern;
  if (FileName.empty()) {
    Pattern = sepe::inferPatternFromStream(std::cin);
  } else {
    std::ifstream In(FileName);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", FileName.c_str());
      return 1;
    }
    Pattern = sepe::inferPatternFromStream(In);
  }

  if (Pattern.empty()) {
    std::fprintf(stderr, "error: no example keys provided\n");
    return 1;
  }
  if (ShowPattern)
    std::fprintf(stderr, "pattern: %s\n", Pattern.str().c_str());
  std::printf("%s\n", sepe::printRegex(Pattern).c_str());
  return 0;
}
