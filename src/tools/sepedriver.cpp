//===- tools/sepedriver.cpp - The Section-4 benchmark driver CLI ----------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's benchmark "driver" as a standalone tool: one
/// parameterization of Section 4's experiment space per invocation.
///
///   sepedriver --key=SSN --container=map --distribution=normal
///              --spread=10000 --mode=batched --affectations=10000
///
/// Prints B-Time, H-Time, B-Coll and T-Coll for all ten hash functions
/// under that parameterization.
///
//===----------------------------------------------------------------------===//

#include "driver/experiment.h"
#include "driver/report.h"
#include "support/cpu_features.h"
#include "support/perf_counters.h"
#include "support/resource_usage.h"
#include "support/telemetry.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace sepe;

namespace {

void printUsage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --key=SSN|CPF|MAC|IPv4|IPv6|INTS|URL1|URL2   (default SSN)\n"
      "  --container=map|set|multimap|multiset        (default map)\n"
      "  --distribution=inc|uniform|normal            (default normal)\n"
      "  --spread=N                                   (default 10000)\n"
      "  --mode=batched|inter70|inter60|inter40       (default batched)\n"
      "  --affectations=N                             (default 10000)\n"
      "  --seed=N                                     (default 0x5e9e)\n"
      "  --isa=native|nobext|portable                 (default native)\n"
      "  --metrics=FILE.json   dump the run's observability data as\n"
      "                        JSON: the telemetry registry (counters,\n"
      "                        histograms, spans; needs a\n"
      "                        -DSEPE_TELEMETRY=ON build for non-empty\n"
      "                        data), PMU counters for the experiment\n"
      "                        loop when perf_event_open works here,\n"
      "                        and getrusage resource totals\n",
      Argv0);
}

bool parseValue(const std::string &Arg, const char *Name,
                std::string &Out) {
  const std::string Prefix = std::string("--") + Name + "=";
  if (Arg.rfind(Prefix, 0) != 0)
    return false;
  Out = Arg.substr(Prefix.size());
  return true;
}

const char *isaLevelName(IsaLevel Isa) {
  switch (Isa) {
  case IsaLevel::Native:
    return "native";
  case IsaLevel::NoBitExtract:
    return "nobext";
  case IsaLevel::Portable:
    return "portable";
  }
  return "?";
}

} // namespace

int main(int Argc, char **Argv) {
  PaperKey Key = PaperKey::SSN;
  ExperimentConfig Config;
  IsaLevel Isa = IsaLevel::Native;
  std::string MetricsPath;

  for (int I = 1; I != Argc; ++I) {
    const std::string Arg = Argv[I];
    std::string Value;
    if (Arg == "--help" || Arg == "-h") {
      printUsage(Argv[0]);
      return 0;
    }
    if (parseValue(Arg, "key", Value)) {
      bool Found = false;
      for (PaperKey Candidate : AllPaperKeys)
        if (Value == paperKeyName(Candidate)) {
          Key = Candidate;
          Found = true;
        }
      if (!Found) {
        std::fprintf(stderr, "error: unknown key type '%s'\n",
                     Value.c_str());
        return 1;
      }
    } else if (parseValue(Arg, "container", Value)) {
      if (Value == "map")
        Config.Container = ContainerKind::Map;
      else if (Value == "set")
        Config.Container = ContainerKind::Set;
      else if (Value == "multimap")
        Config.Container = ContainerKind::MultiMap;
      else if (Value == "multiset")
        Config.Container = ContainerKind::MultiSet;
      else {
        std::fprintf(stderr, "error: unknown container '%s'\n",
                     Value.c_str());
        return 1;
      }
    } else if (parseValue(Arg, "distribution", Value)) {
      if (Value == "inc")
        Config.Distribution = KeyDistribution::Incremental;
      else if (Value == "uniform")
        Config.Distribution = KeyDistribution::Uniform;
      else if (Value == "normal")
        Config.Distribution = KeyDistribution::Normal;
      else {
        std::fprintf(stderr, "error: unknown distribution '%s'\n",
                     Value.c_str());
        return 1;
      }
    } else if (parseValue(Arg, "spread", Value)) {
      Config.Spread = std::stoul(Value);
    } else if (parseValue(Arg, "mode", Value)) {
      if (Value == "batched")
        Config.Mode = ExecMode::Batched;
      else if (Value == "inter70")
        Config.Mode = ExecMode::Inter70_20;
      else if (Value == "inter60")
        Config.Mode = ExecMode::Inter60_20;
      else if (Value == "inter40")
        Config.Mode = ExecMode::Inter40_30;
      else {
        std::fprintf(stderr, "error: unknown mode '%s'\n", Value.c_str());
        return 1;
      }
    } else if (parseValue(Arg, "affectations", Value)) {
      Config.Affectations = std::stoul(Value);
    } else if (parseValue(Arg, "seed", Value)) {
      Config.Seed = std::stoull(Value);
    } else if (parseValue(Arg, "metrics", Value)) {
      MetricsPath = Value;
    } else if (parseValue(Arg, "isa", Value)) {
      if (Value == "native")
        Isa = IsaLevel::Native;
      else if (Value == "nobext")
        Isa = IsaLevel::NoBitExtract;
      else if (Value == "portable")
        Isa = IsaLevel::Portable;
      else {
        std::fprintf(stderr, "error: unknown isa '%s'\n", Value.c_str());
        return 1;
      }
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      printUsage(Argv[0]);
      return 1;
    }
  }

  if (!MetricsPath.empty()) {
    if (!telemetry::compiledIn())
      std::fprintf(stderr,
                   "warning: --metrics requested but this binary was built "
                   "without -DSEPE_TELEMETRY=ON; the dump will be empty\n");
    telemetry::setEnabled(true);
  }

  std::printf("experiment: key=%s container=%s distribution=%s spread=%zu "
              "mode=%s affectations=%zu\n",
              paperKeyName(Key), containerKindName(Config.Container),
              distributionName(Config.Distribution), Config.Spread,
              execModeName(Config.Mode), Config.Affectations);
  std::printf("isa: requested=%s resolved=%s\n", isaLevelName(Isa),
              cpuFeatureString().c_str());

  const HashFunctionSet Set = HashFunctionSet::create(Key, Isa);
  const Workload Work = makeWorkload(Key, Config);

  std::printf("batch path:");
  for (HashKind Kind : SyntheticHashKinds) {
    if (Isa != IsaLevel::Native && Kind == HashKind::Pext)
      continue;
    std::printf(" %s=%s", hashKindName(Kind),
                Set.synthesized(syntheticFamily(Kind)).batchPathName());
  }
  std::printf("\n\n");

  // The whole experiment loop runs under one PMU group (when the
  // kernel lets us open one); the reading lands in the pmu.driver.*
  // telemetry counters so --metrics carries it.
  perf::CounterGroup Counters;
  perf::CounterReading Pmu;
  TextTable Table(
      {"Function", "B-Time (ms)", "H-Time (ms)", "B-Coll", "T-Coll"});
  {
    perf::ScopedCounters Scope(Counters, Pmu);
    for (HashKind Kind : AllHashKinds) {
      if (Isa != IsaLevel::Native && Kind == HashKind::Pext)
        continue; // No bext on this target (RQ4).
      const ExperimentResult Result =
          runExperiment(Work, Config, Kind, Set);
      Table.addRow({hashKindName(Kind), formatDouble(Result.BTimeMs),
                    formatDouble(Result.HTimeMs, 4),
                    std::to_string(Result.BucketCollisions),
                    std::to_string(Result.TrueCollisions)});
    }
  }
  perf::recordToTelemetry("driver", Pmu);
  std::printf("%s", Table.str().c_str());
  if (Pmu.Valid)
    std::printf("\npmu (experiment loop): %.0fM cycles, %.0fM "
                "instructions, IPC %.2f, branch miss %.2f%%, cache miss "
                "%.2f%%%s\n",
                static_cast<double>(Pmu.Cycles) / 1e6,
                static_cast<double>(Pmu.Instructions) / 1e6, Pmu.ipc(),
                Pmu.branchMissRate() * 100, Pmu.cacheMissRate() * 100,
                Pmu.Multiplexed ? " (multiplexed)" : "");
  else
    std::printf("\npmu: unavailable (%s)\n",
                perf::unavailableReason().c_str());

  if (Config.Mode == ExecMode::Batched) {
    // The batch-kernel ladder: the same scheduled keys hashed through
    // each kernel width the plan resolves on this host, synthetic
    // families only (baselines have a single path).
    std::printf("\nbatch kernel ladder (H-Time per path, Batched mode):\n");
    TextTable Ladder({"Function", "Path", "H-Time (ms)", "vs scalar"});
    for (HashKind Kind : SyntheticHashKinds) {
      if (Isa != IsaLevel::Native && Kind == HashKind::Pext)
        continue;
      const std::vector<BatchLadderTiming> Rungs =
          measureBatchLadder(Work, Kind, Set);
      double ScalarMs = 0;
      for (const BatchLadderTiming &R : Rungs)
        if (R.Path == "scalar")
          ScalarMs = R.HTimeMs;
      for (const BatchLadderTiming &R : Rungs)
        Ladder.addRow({hashKindName(Kind), R.Path,
                       formatDouble(R.HTimeMs, 4),
                       R.HTimeMs > 0 && ScalarMs > 0
                           ? formatDouble(ScalarMs / R.HTimeMs, 2) + "x"
                           : "-"});
    }
    std::printf("%s", Ladder.str().c_str());
  }

  FlatIndexProbeResult Probe;
  if (runFlatIndexProbe(Work, Set, Probe))
    std::printf("\nspecialized storage (FlatIndexMap over the bijective "
                "Pext plan):\n  schedule B-Time %s ms, final size %zu, "
                "max probe %zu group(s), tombstones %zu\n",
                formatDouble(Probe.BTimeMs).c_str(), Probe.FinalSize,
                Probe.MaxProbeGroups, Probe.Tombstones);

  const ResourceUsage Usage = ResourceUsage::sinceProcessStart();
  std::printf("\nresources: peak RSS %.1f MiB, user %.2f s, sys %.2f s, "
              "wall %.2f s\n",
              static_cast<double>(Usage.PeakRssKb) / 1024.0, Usage.UserSec,
              Usage.SysSec, Usage.WallSec);

  if (!MetricsPath.empty()) {
    std::FILE *Out = std::fopen(MetricsPath.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "error: cannot open metrics file '%s'\n",
                   MetricsPath.c_str());
      return 1;
    }
    std::fprintf(Out,
                 "{\n\"telemetry\": %s,\n\"pmu\": %s,\n"
                 "\"resources\": %s\n}\n",
                 telemetry::toJson().c_str(), Pmu.toJson().c_str(),
                 Usage.toJson().c_str());
    std::fclose(Out);
    std::printf("metrics written to %s\n", MetricsPath.c_str());
  }
  return 0;
}
