//===- tools/sepedriver.cpp - The Section-4 benchmark driver CLI ----------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's benchmark "driver" as a standalone tool: one
/// parameterization of Section 4's experiment space per invocation.
///
///   sepedriver --key=SSN --container=map --distribution=normal
///              --spread=10000 --mode=batched --affectations=10000
///
/// Prints B-Time, H-Time, B-Coll and T-Coll for all ten hash functions
/// under that parameterization.
///
//===----------------------------------------------------------------------===//

#include "container/direct_index_map.h"
#include "container/flat_index_map.h"
#include "core/explain.h"
#include "core/jit.h"
#include "core/synthesizer.h"
#include "driver/experiment.h"
#include "driver/report.h"
#include "quality/mphf_check.h"
#include "runtime/adaptive_hash.h"
#include "support/cpu_features.h"
#include "support/json.h"
#include "support/perf_counters.h"
#include "support/resource_usage.h"
#include "support/telemetry.h"
#include "support/trace.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace sepe;

namespace {

void printUsage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --key=SSN|CPF|MAC|IPv4|IPv6|INTS|URL1|URL2   (default SSN)\n"
      "  --container=map|set|multimap|multiset        (default map)\n"
      "  --distribution=inc|uniform|normal            (default normal)\n"
      "  --spread=N                                   (default 10000)\n"
      "  --mode=batched|inter70|inter60|inter40       (default batched)\n"
      "  --affectations=N                             (default 10000)\n"
      "  --seed=N                                     (default 0x5e9e)\n"
      "  --isa=native|nobext|portable                 (default native)\n"
      "  --path=auto|scalar|interleaved|avx2|jit      (default auto)\n"
      "  --explain[=text|json|dot]  print the synthesized plan for every\n"
      "                        family on --key instead of running the\n"
      "                        experiment; text annotates cost and (when\n"
      "                        the plan JITs) dumps the generated code,\n"
      "                        dot emits one Graphviz digraph clustering\n"
      "                        all four families\n"
      "  --adaptive            replay a drifting key stream through the\n"
      "                        adaptive runtime instead of the Section-4\n"
      "                        experiment: steady-state guarded hashing\n"
      "                        on --key, then a drifted stream until the\n"
      "                        detector trips and a hot swap lands, then\n"
      "                        post-swap steady state (recovery)\n"
      "  --drift-key=FMT       drift into a second paper format instead\n"
      "                        of single-byte-mutated --key keys\n"
      "  --metrics=FILE.json   dump the run's observability data as\n"
      "                        JSON: the telemetry registry (counters,\n"
      "                        histograms, spans; needs a\n"
      "                        -DSEPE_TELEMETRY=ON build for non-empty\n"
      "                        data), PMU counters for the experiment\n"
      "                        loop when perf_event_open works here,\n"
      "                        and getrusage resource totals\n"
      "  --trace=FILE.json     write the flight recorder as Chrome-trace\n"
      "                        JSON (load in chrome://tracing or\n"
      "                        Perfetto; needs a -DSEPE_TRACE=ON build\n"
      "                        for non-empty data)\n"
      "  --mphf[=N]            build a minimal perfect hash over N\n"
      "                        distinct --key keys (default 100000),\n"
      "                        verify the bijection structurally, and\n"
      "                        time MPHF-backed direct-index lookups\n"
      "                        against FlatIndexMap\n"
      "  --mphf-json=FILE      write the --mphf scorecard + timings as\n"
      "                        JSON (the mphf-smoke CI job floors on it)\n",
      Argv0);
}

/// Drains the flight recorder into \p TracePath (Chrome-trace JSON)
/// when --trace was given. Shared by both exit paths.
void writeTraceIfRequested(const std::string &TracePath) {
  if (TracePath.empty())
    return;
  const uint64_t Emitted = trace::emitted();
  const uint64_t Dropped = trace::dropped();
  if (trace::writeChromeTrace(TracePath))
    std::printf("trace written to %s (%llu events, %llu dropped)\n",
                TracePath.c_str(), static_cast<unsigned long long>(Emitted),
                static_cast<unsigned long long>(Dropped));
  else
    std::fprintf(stderr, "error: cannot write trace file '%s'\n",
                 TracePath.c_str());
}

bool parseValue(const std::string &Arg, const char *Name,
                std::string &Out) {
  const std::string Prefix = std::string("--") + Name + "=";
  if (Arg.rfind(Prefix, 0) != 0)
    return false;
  Out = Arg.substr(Prefix.size());
  return true;
}

const char *isaLevelName(IsaLevel Isa) {
  switch (Isa) {
  case IsaLevel::Native:
    return "native";
  case IsaLevel::NoBitExtract:
    return "nobext";
  case IsaLevel::Portable:
    return "portable";
  }
  return "?";
}

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Streams \p Keys through the adaptive hash \p Passes times in
/// 256-key batches; returns ns/key.
double timedAdaptivePasses(const AdaptiveHash &Adaptive,
                           const std::vector<std::string_view> &Keys,
                           size_t Passes) {
  std::vector<uint64_t> Out(Keys.size());
  const double Start = nowMs();
  for (size_t P = 0; P != Passes; ++P) {
    Adaptive.hashBatch(Keys.data(), Out.data(), Keys.size());
    asm volatile("" : : "r"(Out.data()) : "memory");
  }
  return (nowMs() - Start) * 1e6 /
         static_cast<double>(Passes * Keys.size());
}

/// The --adaptive replay: steady state on the base format, a drifted
/// stream until the detector trips and a (manually pumped, so the run
/// is deterministic) resynthesis hot-swaps a widened generation in,
/// then post-swap steady state over the same drifted keys.
int runAdaptiveReplay(PaperKey Key, const ExperimentConfig &Config,
                      IsaLevel Isa, bool HaveDriftKey, PaperKey DriftKey,
                      const std::string &MetricsPath) {
  AdaptiveOptions Options;
  Options.Isa = Isa;
  Options.Background = false; // Pump explicitly: deterministic replay.
  AdaptiveHash Adaptive(paperKeyFormat(Key).abstract(), Options);
  if (!Adaptive.specialized().valid()) {
    std::fprintf(stderr, "error: no specialized plan for %s\n",
                 paperKeyName(Key));
    return 1;
  }

  const size_t StreamKeys = std::max<size_t>(Config.Affectations, 2048);
  KeyGenerator Gen(paperKeyFormat(Key), Config.Distribution, Config.Seed);
  std::vector<std::string> Base;
  Base.reserve(StreamKeys);
  for (size_t I = 0; I != StreamKeys; ++I)
    Base.push_back(Gen.next());

  std::vector<std::string> Drift;
  if (HaveDriftKey) {
    KeyGenerator DriftGen(paperKeyFormat(DriftKey), Config.Distribution,
                          Config.Seed + 1);
    Drift.reserve(StreamKeys);
    for (size_t I = 0; I != StreamKeys; ++I)
      Drift.push_back(DriftGen.next());
  } else {
    const DriftProbe Probe = findDriftProbe(Adaptive.pattern());
    if (!Probe.Valid) {
      std::fprintf(stderr,
                   "error: %s's pattern admits every byte; nothing to "
                   "drift (pass --drift-key=FMT)\n",
                   paperKeyName(Key));
      return 1;
    }
    Drift = Base;
    for (std::string &K : Drift)
      K[Probe.Pos] = Probe.Byte;
  }
  const std::vector<std::string_view> BaseViews(Base.begin(), Base.end());
  const std::vector<std::string_view> DriftViews(Drift.begin(),
                                                 Drift.end());

  std::printf("adaptive replay: key=%s drift=%s stream=%zu keys "
              "window=%zu threshold=%.3f\n",
              paperKeyName(Key),
              HaveDriftKey ? paperKeyName(DriftKey) : "mutated",
              StreamKeys, Options.DriftWindow, Options.DriftThreshold);

  // Phase 1: steady state. A couple of warmup passes, then timed.
  (void)timedAdaptivePasses(Adaptive, BaseViews, 2);
  const double SteadyNs = timedAdaptivePasses(Adaptive, BaseViews, 8);
  const SynthesizedHash Raw = Adaptive.specialized();
  std::vector<uint64_t> RawOut(BaseViews.size());
  double RawStart = nowMs();
  for (size_t P = 0; P != 8; ++P) {
    Raw.hashBatch(BaseViews.data(), RawOut.data(), BaseViews.size());
    asm volatile("" : : "r"(RawOut.data()) : "memory");
  }
  const double RawNs =
      (nowMs() - RawStart) * 1e6 / static_cast<double>(8 * BaseViews.size());
  std::printf("\nphase 1 (steady state, in-format):\n"
              "  guarded  %.3f ns/key\n  raw      %.3f ns/key "
              "(specialized batch, no guard)\n  overhead %.1f%%\n",
              SteadyNs, RawNs,
              RawNs > 0 ? (SteadyNs / RawNs - 1.0) * 100 : 0.0);

  // Phase 2: the drifted stream, windowed. Pump the resynthesizer as
  // soon as a tripped window latches it, and report the swap point.
  std::printf("\nphase 2 (drifted stream):\n");
  std::vector<uint64_t> Out(256);
  size_t KeysToSwap = 0;
  const double DriftStart = nowMs();
  for (size_t Banner = 0, I = 0; I < DriftViews.size(); I += 256) {
    const size_t Count = std::min<size_t>(256, DriftViews.size() - I);
    Adaptive.hashBatch(DriftViews.data() + I, Out.data(), Count);
    if (Adaptive.resynthesisPending() && Adaptive.pumpResynthesis())
      KeysToSwap = I + Count;
    if (I + Count >= Banner + 4096 || I + Count == DriftViews.size()) {
      Banner = I + Count;
      std::printf("  %6zu keys: window ratio %.3f, epoch %llu\n", Banner,
                  Adaptive.windowMismatchRatio(),
                  static_cast<unsigned long long>(Adaptive.epoch()));
    }
  }
  const double DriftMs = nowMs() - DriftStart;
  if (Adaptive.swaps() == 0) {
    std::printf("  no swap: stream never tripped the detector\n");
  } else {
    std::printf("  hot swap after %zu drifted keys (%.2f ms into the "
                "stream); pattern now %zu..%zu bytes\n",
                KeysToSwap, DriftMs, Adaptive.pattern().minLength(),
                Adaptive.pattern().maxLength());
  }

  // Phase 3: post-swap steady state over the once-drifted keys.
  (void)timedAdaptivePasses(Adaptive, DriftViews, 2);
  const double RecoveredNs = timedAdaptivePasses(Adaptive, DriftViews, 8);
  std::printf("\nphase 3 (post-swap steady state, drifted keys):\n"
              "  guarded  %.3f ns/key (%.1f%% vs pre-drift steady "
              "state)\n",
              RecoveredNs,
              SteadyNs > 0 ? (RecoveredNs / SteadyNs - 1.0) * 100 : 0.0);

  std::printf("\nsummary: swaps %llu, epoch %llu, guard passes %llu, "
              "guard misses %llu, sampled %zu keys\n",
              static_cast<unsigned long long>(Adaptive.swaps()),
              static_cast<unsigned long long>(Adaptive.epoch()),
              static_cast<unsigned long long>(Adaptive.guardPasses()),
              static_cast<unsigned long long>(Adaptive.guardMisses()),
              Adaptive.sampledKeys().size());

  const ResourceUsage Usage = ResourceUsage::sinceProcessStart();
  std::printf("resources: peak RSS %.1f MiB, user %.2f s, sys %.2f s, "
              "wall %.2f s\n",
              static_cast<double>(Usage.PeakRssKb) / 1024.0, Usage.UserSec,
              Usage.SysSec, Usage.WallSec);

  if (!MetricsPath.empty()) {
    std::FILE *F = std::fopen(MetricsPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot open metrics file '%s'\n",
                   MetricsPath.c_str());
      return 1;
    }
    std::string Sampled;
    const std::vector<std::string> SampledKeys = Adaptive.sampledKeys();
    for (size_t I = 0; I != SampledKeys.size(); ++I) {
      Sampled += I == 0 ? "\"" : ", \"";
      Sampled += json::escapeString(SampledKeys[I]);
      Sampled += '"';
    }
    std::fprintf(
        F,
        "{\n\"adaptive\": {\"epoch\": %llu, \"swaps\": %llu, "
        "\"guard_passes\": %llu, \"guard_misses\": %llu,\n"
        "  \"window_ratio\": %.6f, \"steady_ns_per_key\": %.4f, "
        "\"raw_ns_per_key\": %.4f, \"recovered_ns_per_key\": %.4f,\n"
        "  \"keys_to_swap\": %zu,\n  \"sampled_keys\": [%s]},\n"
        "\"telemetry\": %s,\n\"resources\": %s\n}\n",
        static_cast<unsigned long long>(Adaptive.epoch()),
        static_cast<unsigned long long>(Adaptive.swaps()),
        static_cast<unsigned long long>(Adaptive.guardPasses()),
        static_cast<unsigned long long>(Adaptive.guardMisses()),
        Adaptive.windowMismatchRatio(), SteadyNs, RawNs, RecoveredNs,
        KeysToSwap, Sampled.c_str(), telemetry::toJson().c_str(),
        Usage.toJson().c_str());
    std::fclose(F);
    std::printf("metrics written to %s\n", MetricsPath.c_str());
  }
  return 0;
}

/// --explain: synthesize all four families for \p Key and print their
/// plans in \p Format. Text mode appends the annotated JIT dump for
/// plans the JIT compiles; dot mode emits a single digraph with one
/// cluster per family so the whole output pipes into `dot -Tsvg`.
int runExplain(PaperKey Key, IsaLevel Isa, ExplainFormat Format) {
  const FormatSpec &Spec = paperKeyFormat(Key);
  std::vector<std::pair<std::string, HashPlan>> Plans;
  for (HashFamily Family :
       {HashFamily::Naive, HashFamily::OffXor, HashFamily::Aes,
        HashFamily::Pext}) {
    if (Isa != IsaLevel::Native && Family == HashFamily::Pext)
      continue; // No bext on this target (RQ4).
    Expected<HashPlan> Plan = synthesize(Spec.abstract(), Family);
    if (!Plan) {
      std::fprintf(stderr, "error: cannot synthesize %s for %s: %s\n",
                   familyName(Family), paperKeyName(Key),
                   Plan.error().Message.c_str());
      return 1;
    }
    Plans.emplace_back(familyName(Family), Plan.take());
  }

  if (Format == ExplainFormat::Dot) {
    std::printf("%s", explainPlansDot(Plans).c_str());
    return 0;
  }
  if (Format == ExplainFormat::Json) {
    std::string Out = "[";
    for (size_t I = 0; I != Plans.size(); ++I) {
      Out += I == 0 ? "\n" : ",\n";
      Out += explainPlan(Plans[I].second, ExplainFormat::Json);
    }
    Out += "\n]\n";
    std::printf("%s", Out.c_str());
    return 0;
  }
  std::printf("key format: %s (%zu..%zu bytes)\n\n", paperKeyName(Key),
              Spec.abstract().minLength(), Spec.abstract().maxLength());
  for (const auto &[Name, Plan] : Plans) {
    std::printf("%s", explainPlan(Plan).c_str());
    const SynthesizedHash Hash(Plan, Isa);
    if (const JitProgram *Jit = Hash.jitProgram())
      std::printf("%s", explainJitProgram(*Jit).c_str());
    std::printf("\n");
  }
  return 0;
}

/// --mphf: construct the static-set tier over \p N distinct --key
/// keys, verify the bijection structurally (the mphf-smoke CI floors),
/// and race values[mphf(key)] lookups against the FlatIndexMap
/// baseline over the same key set.
int runMphf(PaperKey Key, size_t N, uint64_t Seed,
            const std::string &JsonPath) {
  const FormatSpec &Spec = paperKeyFormat(Key);
  KeyGenerator Gen(Spec, KeyDistribution::Uniform, Seed);
  const std::vector<std::string> Keys = Gen.distinct(N);
  const std::vector<std::string_view> Views(Keys.begin(), Keys.end());
  std::vector<uint32_t> Values(N);
  for (size_t I = 0; I != N; ++I)
    Values[I] = static_cast<uint32_t>(I);

  MphfBuildOptions Options;
  Options.Format = &Spec;
  Options.Seed = Seed;
  const double BuildStart = nowMs();
  Expected<Mphf> F = buildMphf(Views, Options);
  const double BuildMs = nowMs() - BuildStart;
  if (!F) {
    std::fprintf(stderr, "error: %s\n", F.error().Message.c_str());
    return 1;
  }

  quality::MphfReport Report =
      quality::measureMphf(*F, Views.data(), Views.size());
  Report.Format = paperKeyName(Key);
  std::printf("mphf: key=%s n=%zu tier=%s base=%s\n", paperKeyName(Key), N,
              Report.Tier.c_str(),
              F->plan().RawBase ? "raw bytes" : "pext extraction");
  std::printf("build: %.2f ms (%.0f keys/ms), %.2f bits/key\n", BuildMs,
              BuildMs > 0 ? static_cast<double>(N) / BuildMs : 0.0,
              Report.BitsPerKey);
  std::printf("verify: collisions=%llu out_of_range=%llu coverage=%.6f "
              "max_index=%llu -> %s\n",
              static_cast<unsigned long long>(Report.Collisions),
              static_cast<unsigned long long>(Report.OutOfRange),
              Report.Coverage,
              static_cast<unsigned long long>(Report.MaxIndex),
              Report.perfect() ? "minimal perfect" : "BROKEN");

  const DirectIndexMap<uint32_t> Direct(*F, Views.data(), Values.data(), N);
  if (!Direct.valid()) {
    std::fprintf(stderr, "error: DirectIndexMap rejected the MPHF\n");
    return 1;
  }

  const size_t Passes = std::max<size_t>(1, 2000000 / std::max<size_t>(N, 1));
  uint64_t Sink = 0;

  double DirectNs = 0;
  {
    const double Start = nowMs();
    for (size_t P = 0; P != Passes; ++P)
      for (const std::string_view &K : Views)
        Sink += Direct.find(K) != nullptr;
    DirectNs = (nowMs() - Start) * 1e6 / static_cast<double>(Passes * N);
  }
  double DirectBatchNs = 0;
  {
    std::vector<const uint32_t *> Out(N);
    const double Start = nowMs();
    for (size_t P = 0; P != Passes; ++P)
      Sink += Direct.findBatch(Views.data(), Out.data(), N);
    DirectBatchNs =
        (nowMs() - Start) * 1e6 / static_cast<double>(Passes * N);
  }

  // FlatIndexMap over the same set (the general specialized-storage
  // tier, no fixed-set assumption): only sound for a bijective plan.
  double FlatBuildMs = -1, FlatNs = -1;
  Expected<HashPlan> Plan = synthesize(Spec.abstract(), HashFamily::Pext);
  if (Plan && Plan->Bijective) {
    const double Start = nowMs();
    FlatIndexMap<uint32_t> Flat(SynthesizedHash(Plan.take()), N);
    Flat.insertBatch(Views.data(), Values.data(), N);
    FlatBuildMs = nowMs() - Start;
    const double FindStart = nowMs();
    for (size_t P = 0; P != Passes; ++P)
      for (const std::string_view &K : Views)
        Sink += Flat.find(K) != nullptr;
    FlatNs = (nowMs() - FindStart) * 1e6 / static_cast<double>(Passes * N);
  }
  asm volatile("" : : "r"(Sink) : "memory");

  std::printf("lookup (%zu pass%s):\n"
              "  direct        %8.3f ns/key  (%zu fingerprint bytes + "
              "values)\n"
              "  direct batch  %8.3f ns/key\n",
              Passes, Passes == 1 ? "" : "es", DirectNs,
              static_cast<size_t>(N), DirectBatchNs);
  if (FlatNs >= 0)
    std::printf("  flat          %8.3f ns/key  (FlatIndexMap, build "
                "%.2f ms)\n",
                FlatNs, FlatBuildMs);
  else
    std::printf("  flat          skipped (no bijective Pext plan)\n");

  if (!JsonPath.empty()) {
    std::FILE *Out = std::fopen(JsonPath.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "error: cannot open '%s'\n", JsonPath.c_str());
      return 1;
    }
    std::fprintf(Out,
                 "{\n\"mphf\": %s,\n"
                 "\"build_ms\": %.4f,\n\"flat_build_ms\": %.4f,\n"
                 "\"lookup_ns\": {\"direct\": %.4f, \"direct_batch\": "
                 "%.4f, \"flat\": %.4f}\n}\n",
                 Report.toJson().c_str(), BuildMs, FlatBuildMs, DirectNs,
                 DirectBatchNs, FlatNs);
    std::fclose(Out);
    std::printf("mphf scorecard written to %s\n", JsonPath.c_str());
  }
  return Report.perfect() ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  PaperKey Key = PaperKey::SSN;
  ExperimentConfig Config;
  IsaLevel Isa = IsaLevel::Native;
  BatchPath Path = BatchPath::Auto;
  std::string MetricsPath;
  std::string TracePath;
  bool Adaptive = false;
  bool Explain = false;
  ExplainFormat ExplainAs = ExplainFormat::Text;
  bool HaveDriftKey = false;
  PaperKey DriftKey = PaperKey::SSN;
  bool MphfMode = false;
  size_t MphfN = 100000;
  std::string MphfJson;

  for (int I = 1; I != Argc; ++I) {
    const std::string Arg = Argv[I];
    std::string Value;
    if (Arg == "--help" || Arg == "-h") {
      printUsage(Argv[0]);
      return 0;
    }
    if (parseValue(Arg, "key", Value)) {
      bool Found = false;
      for (PaperKey Candidate : AllPaperKeys)
        if (Value == paperKeyName(Candidate)) {
          Key = Candidate;
          Found = true;
        }
      if (!Found) {
        std::fprintf(stderr, "error: unknown key type '%s'\n",
                     Value.c_str());
        return 1;
      }
    } else if (parseValue(Arg, "container", Value)) {
      if (Value == "map")
        Config.Container = ContainerKind::Map;
      else if (Value == "set")
        Config.Container = ContainerKind::Set;
      else if (Value == "multimap")
        Config.Container = ContainerKind::MultiMap;
      else if (Value == "multiset")
        Config.Container = ContainerKind::MultiSet;
      else {
        std::fprintf(stderr, "error: unknown container '%s'\n",
                     Value.c_str());
        return 1;
      }
    } else if (parseValue(Arg, "distribution", Value)) {
      if (Value == "inc")
        Config.Distribution = KeyDistribution::Incremental;
      else if (Value == "uniform")
        Config.Distribution = KeyDistribution::Uniform;
      else if (Value == "normal")
        Config.Distribution = KeyDistribution::Normal;
      else {
        std::fprintf(stderr, "error: unknown distribution '%s'\n",
                     Value.c_str());
        return 1;
      }
    } else if (parseValue(Arg, "spread", Value)) {
      Config.Spread = std::stoul(Value);
    } else if (parseValue(Arg, "mode", Value)) {
      if (Value == "batched")
        Config.Mode = ExecMode::Batched;
      else if (Value == "inter70")
        Config.Mode = ExecMode::Inter70_20;
      else if (Value == "inter60")
        Config.Mode = ExecMode::Inter60_20;
      else if (Value == "inter40")
        Config.Mode = ExecMode::Inter40_30;
      else {
        std::fprintf(stderr, "error: unknown mode '%s'\n", Value.c_str());
        return 1;
      }
    } else if (parseValue(Arg, "affectations", Value)) {
      Config.Affectations = std::stoul(Value);
    } else if (parseValue(Arg, "seed", Value)) {
      Config.Seed = std::stoull(Value);
    } else if (parseValue(Arg, "metrics", Value)) {
      MetricsPath = Value;
    } else if (parseValue(Arg, "trace", Value)) {
      TracePath = Value;
    } else if (Arg == "--adaptive") {
      Adaptive = true;
    } else if (parseValue(Arg, "mphf-json", Value)) {
      MphfJson = Value;
      MphfMode = true;
    } else if (Arg == "--mphf" || parseValue(Arg, "mphf", Value)) {
      if (!Value.empty())
        MphfN = std::stoul(Value);
      MphfMode = true;
      Value.clear();
    } else if (Arg == "--explain" || parseValue(Arg, "explain", Value)) {
      if (!parseExplainFormat(Value, ExplainAs)) {
        std::fprintf(stderr, "error: unknown explain format '%s'\n",
                     Value.c_str());
        return 1;
      }
      Explain = true;
    } else if (parseValue(Arg, "drift-key", Value)) {
      bool Found = false;
      for (PaperKey Candidate : AllPaperKeys)
        if (Value == paperKeyName(Candidate)) {
          DriftKey = Candidate;
          Found = true;
        }
      if (!Found) {
        std::fprintf(stderr, "error: unknown drift key type '%s'\n",
                     Value.c_str());
        return 1;
      }
      HaveDriftKey = true;
    } else if (parseValue(Arg, "isa", Value)) {
      if (Value == "native")
        Isa = IsaLevel::Native;
      else if (Value == "nobext")
        Isa = IsaLevel::NoBitExtract;
      else if (Value == "portable")
        Isa = IsaLevel::Portable;
      else {
        std::fprintf(stderr, "error: unknown isa '%s'\n", Value.c_str());
        return 1;
      }
    } else if (parseValue(Arg, "path", Value)) {
      if (Value == "auto")
        Path = BatchPath::Auto;
      else if (Value == "scalar")
        Path = BatchPath::Scalar;
      else if (Value == "interleaved")
        Path = BatchPath::Interleaved;
      else if (Value == "avx2")
        Path = BatchPath::Avx2;
      else if (Value == "jit")
        Path = BatchPath::Jit;
      else {
        std::fprintf(stderr, "error: unknown path '%s'\n", Value.c_str());
        return 1;
      }
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      printUsage(Argv[0]);
      return 1;
    }
  }

  if (!MetricsPath.empty()) {
    if (!telemetry::compiledIn())
      std::fprintf(stderr,
                   "warning: --metrics requested but this binary was built "
                   "without -DSEPE_TELEMETRY=ON; the dump will be empty\n");
    telemetry::setEnabled(true);
  }
  if (!TracePath.empty()) {
    if (!trace::compiledIn())
      std::fprintf(stderr,
                   "warning: --trace requested but this binary was built "
                   "without -DSEPE_TRACE=ON; the trace will be empty\n");
    trace::setEnabled(true);
  }

  if (Explain)
    return runExplain(Key, Isa, ExplainAs);

  if (MphfMode) {
    const int Rc = runMphf(Key, MphfN, Config.Seed, MphfJson);
    writeTraceIfRequested(TracePath);
    return Rc;
  }

  if (Adaptive) {
    const int Rc = runAdaptiveReplay(Key, Config, Isa, HaveDriftKey,
                                     DriftKey, MetricsPath);
    writeTraceIfRequested(TracePath);
    return Rc;
  }

  std::printf("experiment: key=%s container=%s distribution=%s spread=%zu "
              "mode=%s affectations=%zu\n",
              paperKeyName(Key), containerKindName(Config.Container),
              distributionName(Config.Distribution), Config.Spread,
              execModeName(Config.Mode), Config.Affectations);
  std::printf("isa: requested=%s resolved=%s\n", isaLevelName(Isa),
              cpuFeatureString().c_str());

  const HashFunctionSet Set = HashFunctionSet::create(Key, Isa, Path);
  std::printf("path: requested=%s resolved=%s\n", batchPathName(Path),
              Set.synthesized(HashFamily::Pext).batchPathName());
  const Workload Work = makeWorkload(Key, Config);

  std::printf("batch path:");
  for (HashKind Kind : SyntheticHashKinds) {
    if (Isa != IsaLevel::Native && Kind == HashKind::Pext)
      continue;
    std::printf(" %s=%s", hashKindName(Kind),
                Set.synthesized(syntheticFamily(Kind)).batchPathName());
  }
  std::printf("\n\n");

  // The whole experiment loop runs under one PMU group (when the
  // kernel lets us open one); the reading lands in the pmu.driver.*
  // telemetry counters so --metrics carries it.
  perf::CounterGroup Counters;
  perf::CounterReading Pmu;
  TextTable Table(
      {"Function", "B-Time (ms)", "H-Time (ms)", "B-Coll", "T-Coll"});
  {
    perf::ScopedCounters Scope(Counters, Pmu);
    for (HashKind Kind : AllHashKinds) {
      if (Isa != IsaLevel::Native && Kind == HashKind::Pext)
        continue; // No bext on this target (RQ4).
      const ExperimentResult Result =
          runExperiment(Work, Config, Kind, Set);
      Table.addRow({hashKindName(Kind), formatDouble(Result.BTimeMs),
                    formatDouble(Result.HTimeMs, 4),
                    std::to_string(Result.BucketCollisions),
                    std::to_string(Result.TrueCollisions)});
    }
  }
  perf::recordToTelemetry("driver", Pmu);
  std::printf("%s", Table.str().c_str());
  if (Pmu.Valid)
    std::printf("\npmu (experiment loop): %.0fM cycles, %.0fM "
                "instructions, IPC %.2f, branch miss %.2f%%, cache miss "
                "%.2f%%%s\n",
                static_cast<double>(Pmu.Cycles) / 1e6,
                static_cast<double>(Pmu.Instructions) / 1e6, Pmu.ipc(),
                Pmu.branchMissRate() * 100, Pmu.cacheMissRate() * 100,
                Pmu.Multiplexed ? " (multiplexed)" : "");
  else
    std::printf("\npmu: unavailable (%s)\n",
                perf::unavailableReason().c_str());

  if (Config.Mode == ExecMode::Batched) {
    // The batch-kernel ladder: the same scheduled keys hashed through
    // each kernel width the plan resolves on this host, synthetic
    // families only (baselines have a single path).
    std::printf("\nbatch kernel ladder (H-Time per path, Batched mode):\n");
    TextTable Ladder({"Function", "Path", "H-Time (ms)", "vs scalar"});
    for (HashKind Kind : SyntheticHashKinds) {
      if (Isa != IsaLevel::Native && Kind == HashKind::Pext)
        continue;
      const std::vector<BatchLadderTiming> Rungs =
          measureBatchLadder(Work, Kind, Set);
      double ScalarMs = 0;
      for (const BatchLadderTiming &R : Rungs)
        if (R.Path == "scalar")
          ScalarMs = R.HTimeMs;
      for (const BatchLadderTiming &R : Rungs)
        Ladder.addRow({hashKindName(Kind), R.Path,
                       formatDouble(R.HTimeMs, 4),
                       R.HTimeMs > 0 && ScalarMs > 0
                           ? formatDouble(ScalarMs / R.HTimeMs, 2) + "x"
                           : "-"});
    }
    std::printf("%s", Ladder.str().c_str());
  }

  FlatIndexProbeResult Probe;
  if (runFlatIndexProbe(Work, Set, Probe))
    std::printf("\nspecialized storage (FlatIndexMap over the bijective "
                "Pext plan):\n  schedule B-Time %s ms, final size %zu, "
                "max probe %zu group(s), tombstones %zu\n",
                formatDouble(Probe.BTimeMs).c_str(), Probe.FinalSize,
                Probe.MaxProbeGroups, Probe.Tombstones);

  const ResourceUsage Usage = ResourceUsage::sinceProcessStart();
  std::printf("\nresources: peak RSS %.1f MiB, user %.2f s, sys %.2f s, "
              "wall %.2f s\n",
              static_cast<double>(Usage.PeakRssKb) / 1024.0, Usage.UserSec,
              Usage.SysSec, Usage.WallSec);

  if (!MetricsPath.empty()) {
    std::FILE *Out = std::fopen(MetricsPath.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "error: cannot open metrics file '%s'\n",
                   MetricsPath.c_str());
      return 1;
    }
    std::fprintf(Out,
                 "{\n\"telemetry\": %s,\n\"pmu\": %s,\n"
                 "\"resources\": %s\n}\n",
                 telemetry::toJson().c_str(), Pmu.toJson().c_str(),
                 Usage.toJson().c_str());
    std::fclose(Out);
    std::printf("metrics written to %s\n", MetricsPath.c_str());
  }
  writeTraceIfRequested(TracePath);
  return 0;
}
