//===- tools/sepeserve.cpp - Concurrent serving demo daemon ---------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end demo of the concurrent serving stack: a ServingTable
/// (AdaptiveHash routing + ShardedIndexMap fast lane + spill lane)
/// driven by N client threads of mixed get/put/erase traffic while a
/// maintenance thread pumps re-synthesis and shard migration. Partway
/// through the run the clients start mixing in out-of-format keys —
/// the drift detector trips, a new generation is synthesized and
/// hot-swapped, the fast lane migrates shard by shard, and the spill
/// lane is swept — all under full load.
///
/// Correctness accounting is the point of the binary: a "resident" set
/// of keys (both in-format and drifted) is inserted before the clients
/// start and never erased, so every lookup of a resident key must hit
/// with the right value at every instant, including mid-swap and
/// mid-migration. Any resident miss or wrong value is a failed lookup;
/// the process exits nonzero if any occur. A second "churn" set takes
/// the put/erase traffic (no expectation, it just keeps the shard locks
/// and tombstone paths hot).
///
///   sepeserve [--threads=N] [--seconds=S] [--keys=FORMAT]
///             [--pool=N] [--read-pct=P] [--drift-pct=P] [--shards=N]
///             [--smoke] [--json=FILE] [--trace=FILE.json]
///             [--metrics-port=N] [--metrics-interval=S]
///             [--metrics-file=FILE]
///
/// --smoke is the CI entry point: a short fixed-size run (used under
/// TSan) that exits 1 on any failed lookup. --trace drains the flight
/// recorder into Chrome-trace JSON at exit; --metrics-port serves live
/// Prometheus text over HTTP while the run is in flight, and
/// --metrics-interval periodically snapshots the same exposition to
/// --metrics-file for socketless environments.
///
//===----------------------------------------------------------------------===//

#include "core/explain.h"
#include "keygen/distributions.h"
#include "keygen/paper_formats.h"
#include "quality/live_stats.h"
#include "quality/monitor.h"
#include "runtime/serving_table.h"
#include "support/json.h"
#include "support/metrics_exporter.h"
#include "support/telemetry.h"
#include "support/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace sepe;

namespace {

struct ServeOptions {
  size_t Threads = 4;
  double Seconds = 5.0;
  PaperKey Key = PaperKey::SSN;
  size_t Pool = 4096;
  unsigned ReadPct = 90;
  unsigned DriftPct = 25;
  size_t Shards = 16;
  bool Smoke = false;
  std::string JsonPath;
  std::string TracePath;
  unsigned MetricsPort = 0;        ///< 0 = no HTTP endpoint.
  double MetricsIntervalSec = 0.0; ///< 0 = no snapshot writer.
  std::string MetricsFile = "sepeserve_metrics.prom";
};

void printUsage() {
  std::fprintf(
      stderr,
      "usage: sepeserve [options]\n"
      "  --threads=N     client threads (default 4)\n"
      "  --seconds=S     run duration (default 5)\n"
      "  --keys=FORMAT   paper key format (default SSN)\n"
      "  --pool=N        key pool size (default 4096)\n"
      "  --read-pct=P    percent of ops that are lookups (default 90)\n"
      "  --drift-pct=P   percent of traffic aimed at out-of-format keys\n"
      "                  after drift onset (default 25)\n"
      "  --shards=N      fast-lane shard count hint (default 16)\n"
      "  --smoke         short fixed-size CI run; exit 1 on any failed\n"
      "                  lookup\n"
      "  --json=FILE     write run statistics as JSON\n"
      "  --trace=FILE    drain the flight recorder into Chrome-trace\n"
      "                  JSON at exit (load in chrome://tracing or\n"
      "                  Perfetto; needs -DSEPE_TRACE=ON for events)\n"
      "  --metrics-port=N     serve live Prometheus metrics on\n"
      "                       127.0.0.1:N while running; also mounts\n"
      "                       /plan (active hash plan, generation-\n"
      "                       stamped) and /quality (live sampled\n"
      "                       distribution quality, JSON)\n"
      "  --metrics-interval=S rewrite the Prometheus exposition to\n"
      "                       --metrics-file every S seconds\n"
      "  --metrics-file=FILE  snapshot target (default\n"
      "                       sepeserve_metrics.prom)\n");
}

bool parseOptions(int Argc, char **Argv, ServeOptions &Options) {
  for (int I = 1; I != Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      std::exit(0);
    } else if (Arg.rfind("--threads=", 0) == 0) {
      Options.Threads = std::max<size_t>(1, std::stoul(Arg.substr(10)));
    } else if (Arg.rfind("--seconds=", 0) == 0) {
      Options.Seconds = std::stod(Arg.substr(10));
    } else if (Arg.rfind("--keys=", 0) == 0) {
      const std::string Name = Arg.substr(7);
      bool Ok = false;
      for (const PaperKey Key : AllPaperKeys)
        if (Name == paperKeyName(Key)) {
          Options.Key = Key;
          Ok = true;
          break;
        }
      if (!Ok) {
        std::fprintf(stderr, "error: unknown key format '%s'\n",
                     Name.c_str());
        return false;
      }
    } else if (Arg.rfind("--pool=", 0) == 0) {
      Options.Pool = std::max<size_t>(64, std::stoul(Arg.substr(7)));
    } else if (Arg.rfind("--read-pct=", 0) == 0) {
      Options.ReadPct = static_cast<unsigned>(
          std::min(100ul, std::stoul(Arg.substr(11))));
    } else if (Arg.rfind("--drift-pct=", 0) == 0) {
      Options.DriftPct = static_cast<unsigned>(
          std::min(100ul, std::stoul(Arg.substr(12))));
    } else if (Arg.rfind("--shards=", 0) == 0) {
      Options.Shards = std::max<size_t>(1, std::stoul(Arg.substr(9)));
    } else if (Arg == "--smoke") {
      Options.Smoke = true;
      Options.Threads = std::min<size_t>(Options.Threads, 4);
      Options.Seconds = 1.5;
      Options.Pool = 1024;
    } else if (Arg.rfind("--json=", 0) == 0) {
      Options.JsonPath = Arg.substr(7);
    } else if (Arg.rfind("--trace=", 0) == 0) {
      Options.TracePath = Arg.substr(8);
    } else if (Arg.rfind("--metrics-port=", 0) == 0) {
      Options.MetricsPort = static_cast<unsigned>(
          std::min(65535ul, std::stoul(Arg.substr(15))));
    } else if (Arg.rfind("--metrics-interval=", 0) == 0) {
      Options.MetricsIntervalSec = std::stod(Arg.substr(19));
    } else if (Arg == "--metrics-interval") {
      Options.MetricsIntervalSec = 0.25; // CI shorthand
    } else if (Arg.rfind("--metrics-file=", 0) == 0) {
      Options.MetricsFile = Arg.substr(15);
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      printUsage();
      return false;
    }
  }
  return true;
}

uint64_t splitmix64(uint64_t &State) {
  State += 0x9E3779B97F4A7C15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

struct alignas(64) ClientCounters {
  uint64_t Gets = 0;
  uint64_t Hits = 0;
  uint64_t FailedLookups = 0; ///< Resident key missed or wrong value.
  uint64_t Puts = 0;
  uint64_t Erases = 0;
  uint64_t BatchOps = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  ServeOptions Options;
  if (!parseOptions(Argc, Argv, Options))
    return 2;

  // --- Observability arms --------------------------------------------------
  if (!Options.TracePath.empty()) {
    if (!trace::compiledIn())
      std::fprintf(stderr, "warning: --trace without -DSEPE_TRACE=ON — "
                           "the trace will be empty\n");
    trace::setEnabled(true);
  }
  const bool WantMetrics =
      Options.MetricsPort != 0 || Options.MetricsIntervalSec > 0.0;
  if (WantMetrics) {
    if (!telemetry::compiledIn())
      std::fprintf(stderr,
                   "warning: metrics export without -DSEPE_TELEMETRY=ON — "
                   "only flight-recorder gauges will be exposed\n");
    telemetry::setEnabled(true);
  }

  // --- Key pools -----------------------------------------------------------
  const FormatSpec Format = paperKeyFormat(Options.Key);
  const KeyPattern Pattern = Format.abstract();
  KeyGenerator Gen(Format, KeyDistribution::Uniform, 0x5e27e);
  const std::vector<std::string> InFormat = Gen.distinct(Options.Pool);
  const size_t ResidentCount = InFormat.size() / 2;

  // Out-of-format keys: one guard-rejecting byte written into copies of
  // the resident keys. If the pattern is all-top (cannot be drifted out
  // of) the run degrades to in-format traffic only.
  const DriftProbe Probe = findDriftProbe(Pattern);
  std::vector<std::string> Drifted;
  if (Probe.Valid) {
    Drifted.assign(InFormat.begin(), InFormat.begin() + ResidentCount);
    for (std::string &Key : Drifted)
      Key[Probe.Pos] = Probe.Byte;
  }

  // --- Table ---------------------------------------------------------------
  AdaptiveOptions Adaptive;
  Adaptive.Family = HashFamily::Pext; // Bijective: engages the fast lane.
  Adaptive.Background = false;        // Maintenance thread pumps swaps.
  Adaptive.Cooldown = std::chrono::milliseconds(0);
  Adaptive.DriftWindow = 512;
  // Feed the live quality monitor: every 64th admitted key lands in
  // the in-format reservoir (one relaxed fetch_add on the hot path).
  Adaptive.QualitySampleEvery = 64;
  ServingTable<uint64_t> Table(Pattern, Adaptive, Options.Shards);
  quality::QualityMonitor Monitor(Table.adaptive());

  // Resident keys: present for the whole run, value = pool index. The
  // drifted residents go in up front too — they live in the spill lane
  // until a widened generation admits them, and must stay visible
  // through the swap, the migration and the sweep.
  for (size_t I = 0; I != ResidentCount; ++I)
    Table.put(InFormat[I], I);
  for (size_t I = 0; I != Drifted.size(); ++I)
    Table.put(Drifted[I], ResidentCount + I);

  const bool FastAtStart = Table.hasFastLane();

  // --- Live metrics exporters ----------------------------------------------
  // The extra block rides every exposition: the fast lane's per-shard
  // lock totals as plain gauges, parsed back out of contentionJson so
  // there is exactly one source of truth for those counters.
  metrics::ExtraFn ContentionProm = [&Table] {
    uint64_t SharedAcq = 0, SharedCon = 0, UniqueAcq = 0, UniqueCon = 0;
    if (Expected<json::Value> Doc = json::parse(Table.fastLaneContentionJson()))
      if (const json::Value *T = Doc->find("totals")) {
        SharedAcq = static_cast<uint64_t>(T->numberOr("shared_acquires", 0));
        SharedCon = static_cast<uint64_t>(T->numberOr("shared_contended", 0));
        UniqueAcq = static_cast<uint64_t>(T->numberOr("unique_acquires", 0));
        UniqueCon = static_cast<uint64_t>(T->numberOr("unique_contended", 0));
      }
    std::string Out;
    Out += "# TYPE sepe_serving_shard_shared_acquires counter\n";
    Out += "sepe_serving_shard_shared_acquires " +
           std::to_string(SharedAcq) + "\n";
    Out += "# TYPE sepe_serving_shard_shared_contended counter\n";
    Out += "sepe_serving_shard_shared_contended " +
           std::to_string(SharedCon) + "\n";
    Out += "# TYPE sepe_serving_shard_unique_acquires counter\n";
    Out += "sepe_serving_shard_unique_acquires " +
           std::to_string(UniqueAcq) + "\n";
    Out += "# TYPE sepe_serving_shard_unique_contended counter\n";
    Out += "sepe_serving_shard_unique_contended " +
           std::to_string(UniqueCon) + "\n";
    return Out;
  };
  metrics::MetricsServer Server;
  // Introspection endpoints, mounted before the listener starts:
  // /plan renders the active generation's hash plan, /quality the
  // latest generation-stamped live quality sample.
  Server.registerHandler(
      "/plan", "text/plain; charset=utf-8", [&Table] {
        const auto Snap = Table.adaptive().snapshot();
        std::string Out =
            "generation " + std::to_string(Snap.Epoch) + "\n";
        if (Snap.Fast.valid())
          Out += explainPlan(Snap.Fast.plan());
        else
          Out += "no specialized plan (STL fallback)\n";
        return Out;
      });
  Server.registerHandler("/quality", "application/json", [] {
    return quality::liveStatsJson();
  });
  if (Options.MetricsPort != 0) {
    if (Server.start(static_cast<uint16_t>(Options.MetricsPort),
                     ContentionProm))
      std::printf("sepeserve: metrics on http://127.0.0.1:%u/metrics\n",
                  Server.port());
    else
      std::fprintf(stderr, "warning: cannot bind metrics port %u\n",
                   Options.MetricsPort);
  }
  metrics::SnapshotWriter Snapshots;
  if (Options.MetricsIntervalSec > 0.0)
    Snapshots.start(Options.MetricsFile, Options.MetricsIntervalSec,
                    ContentionProm);

  // --- Clients -------------------------------------------------------------
  std::atomic<bool> Stop{false};
  std::atomic<bool> DriftOn{false};
  std::vector<ClientCounters> Counters(Options.Threads);
  std::vector<std::thread> Clients;
  Clients.reserve(Options.Threads);

  auto Client = [&](size_t Tid) {
    ClientCounters &C = Counters[Tid];
    uint64_t Rng = 0xC0FFEE + Tid * 0x9E3779B9ULL;
    std::string_view BatchKeys[64];
    uint64_t BatchOut[64];
    uint8_t BatchFound[64];
    while (!Stop.load(std::memory_order_relaxed)) {
      const bool Drift = DriftOn.load(std::memory_order_relaxed) &&
                         !Drifted.empty() &&
                         splitmix64(Rng) % 100 < Options.DriftPct;
      const uint64_t Op = splitmix64(Rng) % 100;
      if (Op < Options.ReadPct) {
        if (Op % 16 == 0) {
          // Batch lookup over resident keys: every slot must hit.
          for (size_t I = 0; I != 64; ++I) {
            const size_t K = splitmix64(Rng) % ResidentCount;
            if (Drift) {
              BatchKeys[I] = Drifted[K];
              BatchOut[I] = ResidentCount + K;
            } else {
              BatchKeys[I] = InFormat[K];
              BatchOut[I] = K;
            }
          }
          uint64_t Expected[64];
          std::memcpy(Expected, BatchOut, sizeof(Expected));
          Table.getBatch(BatchKeys, BatchOut, BatchFound, 64);
          C.Gets += 64;
          ++C.BatchOps;
          for (size_t I = 0; I != 64; ++I) {
            if (BatchFound[I] && BatchOut[I] == Expected[I])
              ++C.Hits;
            else
              ++C.FailedLookups;
          }
        } else {
          const size_t K = splitmix64(Rng) % ResidentCount;
          const std::string &Key = Drift ? Drifted[K] : InFormat[K];
          const uint64_t Expected = Drift ? ResidentCount + K : K;
          uint64_t V = 0;
          ++C.Gets;
          if (Table.get(Key, V) && V == Expected)
            ++C.Hits;
          else
            ++C.FailedLookups;
        }
      } else {
        // Churn half of the pool: put/erase with no expectation.
        const size_t K =
            ResidentCount + splitmix64(Rng) % (InFormat.size() -
                                               ResidentCount);
        if (Op % 2 == 0) {
          Table.put(InFormat[K], K);
          ++C.Puts;
        } else {
          Table.erase(InFormat[K]);
          ++C.Erases;
        }
      }
    }
  };
  for (size_t T = 0; T != Options.Threads; ++T)
    Clients.emplace_back(Client, T);

  // --- Maintenance ---------------------------------------------------------
  std::atomic<uint64_t> MaintainTicks{0};
  std::thread Maintenance([&] {
    uint64_t Tick = 0;
    while (!Stop.load(std::memory_order_relaxed)) {
      if (Table.adaptive().resynthesisPending())
        Table.adaptive().pumpResynthesis();
      if (Table.maintain())
        MaintainTicks.fetch_add(1, std::memory_order_relaxed);
      // Pump the live quality estimator off the hot path (~every
      // 25ms): buckets the in-format reservoir through the container's
      // probe mix and publishes the generation-stamped sample that
      // /quality and the sepe_quality_* gauges serve.
      if (++Tick % 50 == 0)
        (void)Monitor.pump();
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  // --- Run: steady phase, then drift onset ---------------------------------
  const auto RunStart = std::chrono::steady_clock::now();
  const auto Duration = std::chrono::duration<double>(Options.Seconds);
  std::this_thread::sleep_for(Duration * 0.3);
  DriftOn.store(true, std::memory_order_release);
  std::this_thread::sleep_for(Duration * 0.7);
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Clients)
    T.join();
  Maintenance.join();
  const double ElapsedS =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    RunStart)
          .count();

  // Converge and verify every resident key one final time.
  if (Table.adaptive().resynthesisPending())
    Table.adaptive().pumpResynthesis();
  Table.maintain();
  uint64_t FinalFailures = 0;
  for (size_t I = 0; I != ResidentCount; ++I) {
    uint64_t V = 0;
    if (!Table.get(InFormat[I], V) || V != I)
      ++FinalFailures;
  }
  for (size_t I = 0; I != Drifted.size(); ++I) {
    uint64_t V = 0;
    if (!Table.get(Drifted[I], V) || V != ResidentCount + I)
      ++FinalFailures;
  }

  // --- Report --------------------------------------------------------------
  ClientCounters Total;
  for (const ClientCounters &C : Counters) {
    Total.Gets += C.Gets;
    Total.Hits += C.Hits;
    Total.FailedLookups += C.FailedLookups;
    Total.Puts += C.Puts;
    Total.Erases += C.Erases;
    Total.BatchOps += C.BatchOps;
  }
  const ServingTable<uint64_t>::Stats Stats = Table.stats();
  const uint64_t Ops = Total.Gets + Total.Puts + Total.Erases;
  const double OpsPerSec = ElapsedS > 0 ? Ops / ElapsedS : 0;

  std::printf("sepeserve: %s, %zu threads, %.1fs, %zu-key pool\n",
              paperKeyName(Options.Key), Options.Threads, ElapsedS,
              InFormat.size());
  std::printf("  ops            %llu (%.2fM/s, %.2fM/s/thread)\n",
              static_cast<unsigned long long>(Ops), OpsPerSec / 1e6,
              OpsPerSec / 1e6 / Options.Threads);
  std::printf("  gets           %llu (%llu hits, %llu batch calls)\n",
              static_cast<unsigned long long>(Total.Gets),
              static_cast<unsigned long long>(Total.Hits),
              static_cast<unsigned long long>(Total.BatchOps));
  std::printf("  puts/erases    %llu / %llu\n",
              static_cast<unsigned long long>(Total.Puts),
              static_cast<unsigned long long>(Total.Erases));
  std::printf("  fast lane      %s at start, %zu keys, epoch %llu, "
              "%llu migrations\n",
              FastAtStart ? "live" : "absent", Stats.FastSize,
              static_cast<unsigned long long>(Stats.FastEpoch),
              static_cast<unsigned long long>(Stats.Migrations));
  std::printf("  spill lane     %zu keys, %llu swept to fast\n",
              Stats.SpillSize,
              static_cast<unsigned long long>(Stats.SweptKeys));
  std::printf("  hot swaps      %llu (%llu maintain ticks)\n",
              static_cast<unsigned long long>(Table.adaptive().swaps()),
              static_cast<unsigned long long>(
                  MaintainTicks.load(std::memory_order_relaxed)));
  std::printf("  failed lookups %llu in-flight, %llu at final verify\n",
              static_cast<unsigned long long>(Total.FailedLookups),
              static_cast<unsigned long long>(FinalFailures));

  // One last pump so the reported sample reflects end-of-run state.
  const quality::LiveQualitySample Quality = Monitor.pump();
  if (Quality.Valid)
    std::printf("  quality        gen %llu: %llu sampled keys, "
                "%llu duplicate hashes, occupancy skew %.2fx, "
                "chi2 %.1f\n",
                static_cast<unsigned long long>(Quality.Generation),
                static_cast<unsigned long long>(Quality.SampleKeys),
                static_cast<unsigned long long>(Quality.DuplicateHashes),
                Quality.OccupancySkew, Quality.Chi2);
  else
    std::printf("  quality        no sample (reservoir below minimum)\n");

  // Per-shard lock pressure on the fast lane (the active generation's
  // counters; summarized here, embedded shard-by-shard in the JSON).
  const std::string Contention = Table.fastLaneContentionJson();
  // Enable recording for the end-of-run mirror even when no live
  // exporter asked for it: the per-shard histograms are what the
  // percentile line below reads back.
  telemetry::setEnabled(true);
  Table.recordContentionTelemetry();
  {
    uint64_t SharedAcq = 0, SharedCon = 0, UniqueAcq = 0, UniqueCon = 0;
    if (Expected<json::Value> Doc = json::parse(Contention)) {
      if (const json::Value *T = Doc->find("totals")) {
        SharedAcq = static_cast<uint64_t>(T->numberOr("shared_acquires", 0));
        SharedCon = static_cast<uint64_t>(T->numberOr("shared_contended", 0));
        UniqueAcq = static_cast<uint64_t>(T->numberOr("unique_acquires", 0));
        UniqueCon = static_cast<uint64_t>(T->numberOr("unique_contended", 0));
      }
    }
    std::printf("  lock pressure  reads %llu (%llu contended), "
                "writes %llu (%llu contended)\n",
                static_cast<unsigned long long>(SharedAcq),
                static_cast<unsigned long long>(SharedCon),
                static_cast<unsigned long long>(UniqueAcq),
                static_cast<unsigned long long>(UniqueCon));
    if (telemetry::compiledIn()) {
      // Cross-shard distribution (one histogram sample per shard): a
      // hot shard shows up as p99 far above p50.
      const telemetry::Histogram &Shared =
          telemetry::histogram("sharded_index_map.shard.shared_acquires");
      const telemetry::Histogram &Unique =
          telemetry::histogram("sharded_index_map.shard.unique_acquires");
      std::printf("  shard spread   reads p50 %.0f / p99 %.0f, "
                  "writes p50 %.0f / p99 %.0f (per-shard acquires)\n",
                  Shared.percentile(0.50), Shared.percentile(0.99),
                  Unique.percentile(0.50), Unique.percentile(0.99));
    }
  }
  Server.stop();
  Snapshots.stop();

  if (!Options.TracePath.empty()) {
    const uint64_t Emitted = trace::emitted();
    const uint64_t Dropped = trace::dropped();
    if (trace::writeChromeTrace(Options.TracePath))
      std::printf("  trace          %s (%llu events, %llu dropped)\n",
                  Options.TracePath.c_str(),
                  static_cast<unsigned long long>(Emitted),
                  static_cast<unsigned long long>(Dropped));
    else
      std::fprintf(stderr, "warning: cannot write %s\n",
                   Options.TracePath.c_str());
  }

  if (!Options.JsonPath.empty()) {
    std::string QualityJson = quality::liveStatsJson();
    while (!QualityJson.empty() && QualityJson.back() == '\n')
      QualityJson.pop_back();
    if (std::FILE *F = std::fopen(Options.JsonPath.c_str(), "w")) {
      std::fprintf(
          F,
          "{\n"
          "  \"format\": \"%s\",\n"
          "  \"threads\": %zu,\n"
          "  \"elapsed_s\": %.3f,\n"
          "  \"ops\": %llu,\n"
          "  \"ops_per_sec\": %.0f,\n"
          "  \"gets\": %llu,\n"
          "  \"hits\": %llu,\n"
          "  \"puts\": %llu,\n"
          "  \"erases\": %llu,\n"
          "  \"failed_lookups\": %llu,\n"
          "  \"final_verify_failures\": %llu,\n"
          "  \"hot_swaps\": %llu,\n"
          "  \"migrations\": %llu,\n"
          "  \"swept_keys\": %llu,\n"
          "  \"fast_size\": %zu,\n"
          "  \"spill_size\": %zu,\n"
          "  \"quality\": %s,\n"
          "  \"fast_contention\": %s\n"
          "}\n",
          json::escapeString(paperKeyName(Options.Key)).c_str(),
          Options.Threads, ElapsedS,
          static_cast<unsigned long long>(Ops), OpsPerSec,
          static_cast<unsigned long long>(Total.Gets),
          static_cast<unsigned long long>(Total.Hits),
          static_cast<unsigned long long>(Total.Puts),
          static_cast<unsigned long long>(Total.Erases),
          static_cast<unsigned long long>(Total.FailedLookups),
          static_cast<unsigned long long>(FinalFailures),
          static_cast<unsigned long long>(Table.adaptive().swaps()),
          static_cast<unsigned long long>(Stats.Migrations),
          static_cast<unsigned long long>(Stats.SweptKeys),
          Stats.FastSize, Stats.SpillSize, QualityJson.c_str(),
          Contention.c_str());
      std::fclose(F);
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n",
                   Options.JsonPath.c_str());
    }
  }

  if (Total.FailedLookups != 0 || FinalFailures != 0) {
    std::fprintf(stderr, "sepeserve: FAILED — lookups lost under load\n");
    return 1;
  }
  std::printf("sepeserve: OK — zero failed lookups\n");
  return 0;
}
