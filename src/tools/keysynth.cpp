//===- tools/keysynth.cpp - Synthesize hash functions from a regex -------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's keysynth tool (Figure 5): takes the key format as a
/// regular expression and prints C++ hash functors specialized for it.
///
///   keysynth '(([0-9]{3})\.){3}[0-9]{3}'
///   keysynth --family=pext --target=aarch64 '\d{3}-\d{2}-\d{4}'
///   keysynth "$(keybuilder < keys.txt)"
///
//===----------------------------------------------------------------------===//

#include "core/codegen.h"
#include "core/explain.h"
#include "core/plan_io.h"
#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "mphf/mphf.h"
#include "mphf/mphf_explain.h"
#include "mphf/mphf_io.h"

#include <fstream>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace sepe;

namespace {

void printUsage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] <regex>\n"
      "  Prints C++ hash functors specialized for the key format.\n"
      "  options:\n"
      "    --family=all|naive|offxor|aes|pext   (default: all)\n"
      "    --target=x86|aarch64|portable        (default: x86)\n"
      "    --name=<StructName>                  (default: Sepe<Family>Hash)\n"
      "    --c-wrapper    emit extern \"C\" entry points\n"
      "    --allow-short  specialize keys shorter than 8 bytes\n"
      "    --plan         dump the hash plan IR to stderr\n"
      "    --plan-out=<file>  also write serialized plans (one per\n"
      "                       family, '.family' suffixed)\n"
      "    --plan-in=<file>   skip synthesis; generate code from a\n"
      "                       serialized plan (regex not required)\n"
      "    --explain[=text|json|dot]  print a human-readable plan\n"
      "                       explanation instead of generated code\n"
      "                       (works with --plan-in too)\n"
      "    --mphf-keys=<file> build a minimal perfect hash over the\n"
      "                       newline-delimited key set (the regex, when\n"
      "                       given, supplies the extraction front-end)\n"
      "    --mphf-out=<file>  write the built MPHF in serialized form\n"
      "    --mphf-in=<file>   load a serialized MPHF instead of\n"
      "                       building; renders with --explain\n",
      Argv0);
}

/// Reads newline-delimited keys; empty lines are skipped.
bool readKeyFile(const std::string &Path, std::vector<std::string> &Keys) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::string Line;
  while (std::getline(In, Line))
    if (!Line.empty())
      Keys.push_back(Line);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string FamilyArg = "all";
  std::string TargetArg = "x86";
  std::string Regex;
  CodegenOptions Codegen;
  SynthesisOptions Synthesis;
  bool DumpPlan = false;
  bool Explain = false;
  ExplainFormat ExplainAs = ExplainFormat::Text;
  std::string PlanOut;
  std::string PlanIn;
  std::string MphfKeys;
  std::string MphfOut;
  std::string MphfIn;

  for (int I = 1; I != Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printUsage(Argv[0]);
      return 0;
    }
    if (Arg.rfind("--family=", 0) == 0) {
      FamilyArg = Arg.substr(9);
    } else if (Arg.rfind("--target=", 0) == 0) {
      TargetArg = Arg.substr(9);
    } else if (Arg.rfind("--name=", 0) == 0) {
      Codegen.StructName = Arg.substr(7);
    } else if (Arg == "--c-wrapper") {
      Codegen.EmitCWrapper = true;
    } else if (Arg == "--allow-short") {
      Synthesis.AllowShortKeys = true;
    } else if (Arg == "--plan") {
      DumpPlan = true;
    } else if (Arg == "--explain" || Arg.rfind("--explain=", 0) == 0) {
      const std::string Value =
          Arg == "--explain" ? "" : Arg.substr(10);
      if (!parseExplainFormat(Value, ExplainAs)) {
        std::fprintf(stderr, "error: unknown explain format '%s'\n",
                     Value.c_str());
        return 1;
      }
      Explain = true;
    } else if (Arg.rfind("--plan-out=", 0) == 0) {
      PlanOut = Arg.substr(11);
    } else if (Arg.rfind("--plan-in=", 0) == 0) {
      PlanIn = Arg.substr(10);
    } else if (Arg.rfind("--mphf-keys=", 0) == 0) {
      MphfKeys = Arg.substr(12);
    } else if (Arg.rfind("--mphf-out=", 0) == 0) {
      MphfOut = Arg.substr(11);
    } else if (Arg.rfind("--mphf-in=", 0) == 0) {
      MphfIn = Arg.substr(10);
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return 1;
    } else if (Regex.empty()) {
      Regex = Arg;
    } else {
      std::fprintf(stderr, "error: multiple regex arguments\n");
      return 1;
    }
  }
  if (Regex.empty() && PlanIn.empty() && MphfKeys.empty() &&
      MphfIn.empty()) {
    printUsage(Argv[0]);
    return 1;
  }

  if (TargetArg == "x86")
    Codegen.Isa = Target::X86;
  else if (TargetArg == "aarch64")
    Codegen.Isa = Target::AArch64;
  else if (TargetArg == "portable")
    Codegen.Isa = Target::Portable;
  else {
    std::fprintf(stderr, "error: unknown target '%s'\n", TargetArg.c_str());
    return 1;
  }

  // --mphf-in: load a stored MPHF and render it (no regex needed).
  if (!MphfIn.empty()) {
    std::ifstream In(MphfIn);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", MphfIn.c_str());
      return 1;
    }
    std::string Text((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
    Expected<MphfPlan> Plan = deserializeMphf(Text);
    if (!Plan) {
      std::fprintf(stderr, "error: %s\n", Plan.error().Message.c_str());
      return 1;
    }
    if (!MphfOut.empty()) {
      std::ofstream Out(MphfOut);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write '%s'\n", MphfOut.c_str());
        return 1;
      }
      Out << serializeMphf(*Plan);
    }
    std::fputs(explainMphf(*Plan, ExplainAs).c_str(), stdout);
    return 0;
  }

  // --mphf-keys: build a minimal perfect hash over the key file. The
  // regex, when given, supplies the format whose Pext extraction
  // becomes the MPHF's base-image front-end.
  if (!MphfKeys.empty()) {
    std::vector<std::string> Keys;
    if (!readKeyFile(MphfKeys, Keys)) {
      std::fprintf(stderr, "error: cannot open '%s'\n", MphfKeys.c_str());
      return 1;
    }
    if (Keys.empty()) {
      std::fprintf(stderr, "error: no keys in '%s'\n", MphfKeys.c_str());
      return 1;
    }
    MphfBuildOptions Options;
    Expected<FormatSpec> Format = Error{"no format"};
    if (!Regex.empty()) {
      Format = parseRegex(Regex);
      if (!Format) {
        std::fprintf(stderr, "error: %s\n",
                     Format.error().Message.c_str());
        return 1;
      }
      Options.Format = &*Format;
    }
    Expected<Mphf> F = buildMphf(Keys, Options);
    if (!F) {
      std::fprintf(stderr, "error: %s\n", F.error().Message.c_str());
      return 1;
    }
    const MphfPlan &Plan = F->plan();
    if (!MphfOut.empty()) {
      std::ofstream Out(MphfOut);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write '%s'\n", MphfOut.c_str());
        return 1;
      }
      Out << serializeMphf(Plan);
    }
    std::fputs(explainMphf(Plan, ExplainAs).c_str(), stdout);
    return 0;
  }

  // --plan-in: bypass regex parsing and synthesis entirely.
  if (!PlanIn.empty()) {
    std::ifstream In(PlanIn);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", PlanIn.c_str());
      return 1;
    }
    std::string Text((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
    Expected<HashPlan> Plan = deserializePlan(Text);
    if (!Plan) {
      std::fprintf(stderr, "error: %s\n", Plan.error().Message.c_str());
      return 1;
    }
    if (DumpPlan)
      std::fputs(Plan->str().c_str(), stderr);
    if (Explain)
      std::fputs(explainPlan(*Plan, ExplainAs).c_str(), stdout);
    else
      std::fputs(emitTranslationUnit({Plan.take()}, Codegen).c_str(),
                 stdout);
    return 0;
  }

  Expected<FormatSpec> Format = parseRegex(Regex);
  if (!Format) {
    std::fprintf(stderr, "error: %s", Format.error().Message.c_str());
    if (Format.error().Pos != std::string::npos)
      std::fprintf(stderr, " (at position %zu)", Format.error().Pos);
    std::fprintf(stderr, "\n");
    return 1;
  }
  const KeyPattern Pattern = Format->abstract();

  std::vector<HashFamily> Families;
  if (FamilyArg == "all")
    Families = {HashFamily::Naive, HashFamily::OffXor, HashFamily::Aes,
                HashFamily::Pext};
  else if (FamilyArg == "naive")
    Families = {HashFamily::Naive};
  else if (FamilyArg == "offxor")
    Families = {HashFamily::OffXor};
  else if (FamilyArg == "aes")
    Families = {HashFamily::Aes};
  else if (FamilyArg == "pext")
    Families = {HashFamily::Pext};
  else {
    std::fprintf(stderr, "error: unknown family '%s'\n", FamilyArg.c_str());
    return 1;
  }

  std::vector<HashPlan> Plans;
  for (HashFamily Family : Families) {
    Expected<HashPlan> Plan = synthesize(Pattern, Family, Synthesis);
    if (!Plan) {
      std::fprintf(stderr, "error: %s\n", Plan.error().Message.c_str());
      return 1;
    }
    if (DumpPlan)
      std::fputs(Plan->str().c_str(), stderr);
    if (!PlanOut.empty()) {
      const std::string Path =
          PlanOut + "." + familyName(Family);
      std::ofstream Out(Path);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
        return 1;
      }
      Out << serializePlan(*Plan);
    }
    Plans.push_back(Plan.take());
  }

  if (Explain) {
    if (ExplainAs == ExplainFormat::Dot) {
      std::vector<std::pair<std::string, HashPlan>> Named;
      for (size_t I = 0; I != Plans.size(); ++I)
        Named.emplace_back(familyName(Families[I]), Plans[I]);
      std::fputs(explainPlansDot(Named).c_str(), stdout);
    } else if (ExplainAs == ExplainFormat::Json) {
      std::string Out = "[";
      for (size_t I = 0; I != Plans.size(); ++I) {
        Out += I == 0 ? "\n" : ",\n";
        Out += explainPlan(Plans[I], ExplainFormat::Json);
      }
      Out += "\n]\n";
      std::fputs(Out.c_str(), stdout);
    } else {
      for (const HashPlan &Plan : Plans)
        std::fputs(explainPlan(Plan).c_str(), stdout);
    }
    return 0;
  }

  std::fputs(emitTranslationUnit(Plans, Codegen).c_str(), stdout);
  return 0;
}
