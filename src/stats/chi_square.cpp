//===- stats/chi_square.cpp - Chi-square goodness of fit -----------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "stats/chi_square.h"

#include <cassert>
#include <cmath>

using namespace sepe;

double sepe::chiSquareUniform(const std::vector<uint64_t> &Observed) {
  assert(!Observed.empty() && "chi-square needs at least one bin");
  uint64_t Total = 0;
  for (uint64_t Count : Observed)
    Total += Count;
  assert(Total > 0 && "chi-square needs at least one observation");
  const double Expected =
      static_cast<double>(Total) / static_cast<double>(Observed.size());
  double Statistic = 0;
  for (uint64_t Count : Observed) {
    const double Diff = static_cast<double>(Count) - Expected;
    Statistic += Diff * Diff / Expected;
  }
  return Statistic;
}

std::vector<uint64_t> sepe::histogram64(const std::vector<uint64_t> &Hashes,
                                        size_t Bins) {
  assert(Bins > 0 && "histogram needs at least one bin");
  std::vector<uint64_t> Counts(Bins, 0);
  // Map the full 64-bit range onto bins by the high bits, which is both
  // fast and exact when Bins divides 2^64.
  for (uint64_t Hash : Hashes) {
    const auto Bin = static_cast<size_t>(
        (static_cast<unsigned __int128>(Hash) * Bins) >> 64);
    ++Counts[Bin];
  }
  return Counts;
}

double sepe::hashUniformityChi2(const std::vector<uint64_t> &Hashes,
                                size_t Bins) {
  return chiSquareUniform(histogram64(Hashes, Bins));
}

double sepe::chiSquarePValue(double Statistic, size_t Dof) {
  assert(Dof > 0 && "degrees of freedom must be positive");
  // Wilson-Hilferty: (X/k)^(1/3) is approximately normal with mean
  // 1 - 2/(9k) and variance 2/(9k).
  const double K = static_cast<double>(Dof);
  const double Cube = std::cbrt(Statistic / K);
  const double Mean = 1.0 - 2.0 / (9.0 * K);
  const double Sd = std::sqrt(2.0 / (9.0 * K));
  const double Z = (Cube - Mean) / Sd;
  return 0.5 * std::erfc(Z / std::sqrt(2.0));
}
