//===- stats/mann_whitney.h - Mann-Whitney U test ---------------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two-sided Mann-Whitney U test with the normal approximation and tie
/// correction — the significance test the paper uses to compare hash
/// functions ("Mann-Whitney U tests show that there is a significant
/// statistical difference...").
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_STATS_MANN_WHITNEY_H
#define SEPE_STATS_MANN_WHITNEY_H

#include <vector>

namespace sepe {

struct MannWhitneyResult {
  /// The U statistic of the first sample.
  double U = 0;
  /// Standard normal score of U (0 when the approximation degenerates).
  double Z = 0;
  /// Two-sided p-value under the normal approximation.
  double PValue = 1;

  /// True when the two samples differ at the given significance level.
  bool significantAt(double Alpha = 0.05) const { return PValue < Alpha; }
};

/// Runs the test on two independent samples. Requires both samples to be
/// non-empty; samples of fewer than ~8 observations make the normal
/// approximation coarse (the paper uses 10 per experiment).
MannWhitneyResult mannWhitneyU(const std::vector<double> &A,
                               const std::vector<double> &B);

} // namespace sepe

#endif // SEPE_STATS_MANN_WHITNEY_H
