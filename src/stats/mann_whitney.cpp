//===- stats/mann_whitney.cpp - Mann-Whitney U test ----------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "stats/mann_whitney.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace sepe;

namespace {

/// Standard normal survival function via erfc.
double normalSf(double Z) { return 0.5 * std::erfc(Z / std::sqrt(2.0)); }

} // namespace

MannWhitneyResult sepe::mannWhitneyU(const std::vector<double> &A,
                                     const std::vector<double> &B) {
  assert(!A.empty() && !B.empty() && "both samples must be non-empty");
  const size_t N1 = A.size(), N2 = B.size();

  // Pool, sort, and assign mid-ranks to ties.
  struct Tagged {
    double Value;
    bool FromA;
  };
  std::vector<Tagged> Pool;
  Pool.reserve(N1 + N2);
  for (double V : A)
    Pool.push_back({V, true});
  for (double V : B)
    Pool.push_back({V, false});
  std::sort(Pool.begin(), Pool.end(),
            [](const Tagged &X, const Tagged &Y) { return X.Value < Y.Value; });

  double RankSumA = 0;
  double TieCorrection = 0;
  size_t I = 0;
  while (I != Pool.size()) {
    size_t J = I + 1;
    while (J != Pool.size() && Pool[J].Value == Pool[I].Value)
      ++J;
    const double MidRank =
        (static_cast<double>(I + 1) + static_cast<double>(J)) / 2.0;
    const double TieSize = static_cast<double>(J - I);
    if (J - I > 1)
      TieCorrection += TieSize * TieSize * TieSize - TieSize;
    for (size_t K = I; K != J; ++K)
      if (Pool[K].FromA)
        RankSumA += MidRank;
    I = J;
  }

  MannWhitneyResult Result;
  const double DN1 = static_cast<double>(N1), DN2 = static_cast<double>(N2);
  Result.U = RankSumA - DN1 * (DN1 + 1) / 2.0;

  const double MeanU = DN1 * DN2 / 2.0;
  const double N = DN1 + DN2;
  const double VarU =
      DN1 * DN2 / 12.0 * ((N + 1) - TieCorrection / (N * (N - 1)));
  if (VarU <= 0) {
    // All observations tied: no evidence of a difference.
    Result.Z = 0;
    Result.PValue = 1;
    return Result;
  }
  // Continuity correction toward the mean.
  const double Diff = Result.U - MeanU;
  const double Corrected =
      Diff > 0.5 ? Diff - 0.5 : (Diff < -0.5 ? Diff + 0.5 : 0.0);
  Result.Z = Corrected / std::sqrt(VarU);
  Result.PValue = 2.0 * normalSf(std::abs(Result.Z));
  if (Result.PValue > 1)
    Result.PValue = 1;
  return Result;
}
