//===- stats/pearson.cpp - Pearson correlation ---------------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "stats/pearson.h"

#include <cassert>
#include <cmath>

using namespace sepe;

double sepe::pearsonCorrelation(const std::vector<double> &X,
                                const std::vector<double> &Y) {
  assert(X.size() == Y.size() && "samples must pair up");
  assert(X.size() >= 2 && "correlation needs at least two observations");
  const double N = static_cast<double>(X.size());
  double SumX = 0, SumY = 0;
  for (size_t I = 0; I != X.size(); ++I) {
    SumX += X[I];
    SumY += Y[I];
  }
  const double MeanX = SumX / N, MeanY = SumY / N;
  double Cov = 0, VarX = 0, VarY = 0;
  for (size_t I = 0; I != X.size(); ++I) {
    const double Dx = X[I] - MeanX, Dy = Y[I] - MeanY;
    Cov += Dx * Dy;
    VarX += Dx * Dx;
    VarY += Dy * Dy;
  }
  if (VarX == 0 || VarY == 0)
    return 0;
  return Cov / std::sqrt(VarX * VarY);
}
