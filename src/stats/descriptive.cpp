//===- stats/descriptive.cpp - Descriptive statistics --------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//

#include "stats/descriptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace sepe;

double sepe::mean(const std::vector<double> &Sample) {
  if (Sample.empty())
    return 0;
  double Sum = 0;
  for (double V : Sample)
    Sum += V;
  return Sum / static_cast<double>(Sample.size());
}

double sepe::geometricMean(const std::vector<double> &Sample) {
  if (Sample.empty())
    return 0;
  double LogSum = 0;
  for (double V : Sample) {
    assert(V > 0 && "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Sample.size()));
}

double sepe::stddev(const std::vector<double> &Sample) {
  if (Sample.size() < 2)
    return 0;
  const double M = mean(Sample);
  double SumSq = 0;
  for (double V : Sample)
    SumSq += (V - M) * (V - M);
  return std::sqrt(SumSq / static_cast<double>(Sample.size() - 1));
}

double sepe::quantile(std::vector<double> Sample, double Q) {
  assert(Q >= 0 && Q <= 1 && "quantile requires Q in [0, 1]");
  if (Sample.empty())
    return 0;
  std::sort(Sample.begin(), Sample.end());
  const double Index = Q * static_cast<double>(Sample.size() - 1);
  const size_t Lo = static_cast<size_t>(Index);
  const size_t Hi = std::min(Lo + 1, Sample.size() - 1);
  const double Frac = Index - static_cast<double>(Lo);
  return Sample[Lo] * (1 - Frac) + Sample[Hi] * Frac;
}

double sepe::median(const std::vector<double> &Sample) {
  return quantile(Sample, 0.5);
}

double sepe::medianAbsDeviation(const std::vector<double> &Sample) {
  if (Sample.size() < 2)
    return 0;
  const double M = median(Sample);
  std::vector<double> Deviations;
  Deviations.reserve(Sample.size());
  for (double V : Sample)
    Deviations.push_back(std::fabs(V - M));
  return median(Deviations);
}

double sepe::coefficientOfVariation(const std::vector<double> &Sample) {
  const double M = mean(Sample);
  if (Sample.size() < 2 || M == 0)
    return 0;
  return stddev(Sample) / M;
}

BoxStats sepe::boxStats(const std::vector<double> &Sample) {
  BoxStats Stats;
  if (Sample.empty())
    return Stats;
  std::vector<double> Sorted = Sample;
  std::sort(Sorted.begin(), Sorted.end());
  Stats.Min = Sorted.front();
  Stats.Max = Sorted.back();
  Stats.Q1 = quantile(Sorted, 0.25);
  Stats.Median = quantile(Sorted, 0.5);
  Stats.Q3 = quantile(Sorted, 0.75);
  Stats.Mean = mean(Sample);
  Stats.Count = Sample.size();
  return Stats;
}
