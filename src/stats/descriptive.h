//===- stats/descriptive.h - Descriptive statistics -------------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Means, geometric means, quantiles and five-number summaries — the
/// aggregations behind every table and boxplot figure in the paper's
/// evaluation.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_STATS_DESCRIPTIVE_H
#define SEPE_STATS_DESCRIPTIVE_H

#include <cstddef>
#include <vector>

namespace sepe {

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double> &Sample);

/// Geometric mean (the paper's aggregate of choice). All values must be
/// positive; 0 for an empty sample.
double geometricMean(const std::vector<double> &Sample);

/// Sample standard deviation (n-1 denominator); 0 for fewer than two
/// observations.
double stddev(const std::vector<double> &Sample);

/// Linear-interpolation quantile, \p Q in [0, 1]. Sorts a copy.
double quantile(std::vector<double> Sample, double Q);

/// The 0.5 quantile; 0 for an empty sample.
double median(const std::vector<double> &Sample);

/// Median absolute deviation from the median — the robust dispersion
/// the perf-regression gate bands noise with; 0 for fewer than two
/// observations.
double medianAbsDeviation(const std::vector<double> &Sample);

/// stddev / mean (unitless trial-stability measure); 0 when the mean
/// is 0 or the sample has fewer than two observations.
double coefficientOfVariation(const std::vector<double> &Sample);

/// Five-number summary plus mean: everything a boxplot needs.
struct BoxStats {
  double Min = 0;
  double Q1 = 0;
  double Median = 0;
  double Q3 = 0;
  double Max = 0;
  double Mean = 0;
  size_t Count = 0;
};

BoxStats boxStats(const std::vector<double> &Sample);

} // namespace sepe

#endif // SEPE_STATS_DESCRIPTIVE_H
