//===- stats/pearson.h - Pearson correlation --------------------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pearson product-moment correlation — the linearity evidence of RQ6
/// ("the smallest Pearson correlation between synthesis time and problem
/// size is 0.993") and RQ8.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_STATS_PEARSON_H
#define SEPE_STATS_PEARSON_H

#include <vector>

namespace sepe {

/// Pearson correlation of two equally sized samples with at least two
/// observations; 0 when either sample has zero variance.
double pearsonCorrelation(const std::vector<double> &X,
                          const std::vector<double> &Y);

} // namespace sepe

#endif // SEPE_STATS_PEARSON_H
