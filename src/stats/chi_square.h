//===- stats/chi_square.h - Chi-square goodness of fit ----------*- C++-*-===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chi-square goodness-of-fit against the uniform distribution — the
/// hash-uniformity metric of RQ3 (Table 2). Hash values are histogrammed
/// over the full 64-bit range and the statistic is compared to a
/// perfectly uniform histogram; the paper reports values normalized by
/// the STL hash's statistic.
///
//===----------------------------------------------------------------------===//

#ifndef SEPE_STATS_CHI_SQUARE_H
#define SEPE_STATS_CHI_SQUARE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sepe {

/// Chi-square statistic of \p Observed against equal expected counts.
/// Requires at least one observation overall.
double chiSquareUniform(const std::vector<uint64_t> &Observed);

/// Histograms \p Hashes into \p Bins equal slices of the 64-bit range.
std::vector<uint64_t> histogram64(const std::vector<uint64_t> &Hashes,
                                  size_t Bins);

/// Convenience: histogram + statistic (the RQ3 methodology, steps 2-4).
double hashUniformityChi2(const std::vector<uint64_t> &Hashes,
                          size_t Bins = 64);

/// Upper-tail p-value of the chi-square distribution with \p Dof degrees
/// of freedom (Wilson-Hilferty normal approximation; adequate for the
/// Dof >= 30 regimes the benchmarks use).
double chiSquarePValue(double Statistic, size_t Dof);

} // namespace sepe

#endif // SEPE_STATS_CHI_SQUARE_H
