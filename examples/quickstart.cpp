//===- examples/quickstart.cpp - The Figure 5 tutorial --------------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's getting-started tutorial (Figure 5) as a runnable
/// program:
///
///   1. describe the key format with a regular expression (or infer it
///      from examples);
///   2. synthesize a specialized hash function;
///   3. plug it into std::unordered_map;
///   4. look at the C++ the keysynth tool would print.
///
//===----------------------------------------------------------------------===//

#include "core/codegen.h"
#include "core/executor.h"
#include "core/inference.h"
#include "core/regex_parser.h"
#include "core/regex_printer.h"
#include "core/synthesizer.h"

#include <cstdio>
#include <string>
#include <unordered_map>

using namespace sepe;

int main() {
  // --- 1. Describe the format ---------------------------------------------
  // Fixed-width IPv4 keys, exactly as in Figure 5 (b).
  const char *Ipv4Regex = R"((([0-9]{3})\.){3}[0-9]{3})";
  Expected<FormatSpec> Format = parseRegex(Ipv4Regex);
  if (!Format) {
    std::fprintf(stderr, "regex error: %s\n",
                 Format.error().Message.c_str());
    return 1;
  }
  std::printf("format: %s (%zu bytes, fixed length)\n", Ipv4Regex,
              Format->maxLength());

  // The same format can be inferred from examples (Figure 5 (a)); two
  // well-chosen keys are enough (Example 3.6).
  const KeyPattern Inferred =
      inferPattern({"000.000.000.000", "555.555.555.555"});
  std::printf("inferred from examples: %s\n",
              printRegex(Inferred).c_str());

  // --- 2. Synthesize a hash function --------------------------------------
  Expected<HashPlan> Plan =
      synthesize(Format->abstract(), HashFamily::OffXor);
  if (!Plan) {
    std::fprintf(stderr, "synthesis error: %s\n",
                 Plan.error().Message.c_str());
    return 1;
  }
  std::printf("\nsynthesized plan:\n%s\n", Plan->str().c_str());
  const SynthesizedHash Ipv4Hash(*Plan);

  // --- 3. Use it with the STL (Figure 5 (d)) -------------------------------
  std::unordered_map<std::string, int, SynthesizedHash> Hits(16, Ipv4Hash);
  Hits["192.168.000.001"] = 42;
  Hits["010.000.000.001"] = 7;
  ++Hits["192.168.000.001"];
  std::printf("Hits[\"192.168.000.001\"] = %d\n",
              Hits.at("192.168.000.001"));
  std::printf("Hits[\"010.000.000.001\"] = %d\n",
              Hits.at("010.000.000.001"));

  // --- 4. The code keysynth would print (Figure 5 (c)) ---------------------
  CodegenOptions Options;
  Options.StructName = "synthesizedOffXorHash";
  std::printf("\n%s", emitHashFunction(*Plan, Options).c_str());
  return 0;
}
