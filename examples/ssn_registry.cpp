//===- examples/ssn_registry.cpp - Example 2.3: SSN-keyed registry --------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A citizen registry keyed by US Social Security Numbers — the paper's
/// running example (Figures 4 and 12). Demonstrates that the Pext
/// function is a bijection from SSN strings to integers, and measures
/// the lookup-throughput gap against std::hash on this machine.
///
//===----------------------------------------------------------------------===//

#include "core/executor.h"
#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "keygen/distributions.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>

using namespace sepe;

namespace {

struct Citizen {
  std::string Name;
  int BirthYear;
};

template <typename Map>
double lookupsPerSecond(Map &Registry,
                        const std::vector<std::string> &Keys) {
  uint64_t Found = 0;
  const auto Start = std::chrono::steady_clock::now();
  for (int Round = 0; Round != 50; ++Round)
    for (const std::string &Key : Keys)
      Found += Registry.count(Key);
  const auto End = std::chrono::steady_clock::now();
  asm volatile("" : : "r"(Found) : "memory");
  const double Seconds =
      std::chrono::duration<double>(End - Start).count();
  return 50.0 * static_cast<double>(Keys.size()) / Seconds;
}

} // namespace

int main() {
  Expected<FormatSpec> Format = parseRegex(R"(\d{3}-\d{2}-\d{4})");
  if (!Format)
    return 1;
  Expected<HashPlan> Plan =
      synthesize(Format->abstract(), HashFamily::Pext);
  if (!Plan) {
    std::fprintf(stderr, "synthesis error: %s\n",
                 Plan.error().Message.c_str());
    return 1;
  }
  std::printf("Pext plan for SSNs (masks of Figure 12):\n%s\n",
              Plan->str().c_str());
  const SynthesizedHash SsnHash(*Plan);

  // The bijection property: 100k distinct SSNs, zero hash collisions.
  KeyGenerator Gen(*Format, KeyDistribution::Uniform, 2024);
  const std::vector<std::string> Ssns = Gen.distinct(100000);
  std::unordered_set<uint64_t> Hashes;
  for (const std::string &Ssn : Ssns)
    Hashes.insert(SsnHash(Ssn));
  std::printf("%zu distinct SSNs -> %zu distinct hashes (%s)\n",
              Ssns.size(), Hashes.size(),
              Ssns.size() == Hashes.size() ? "bijection confirmed"
                                           : "collision!");

  // Populate two registries: specialized hash vs std::hash.
  std::unordered_map<std::string, Citizen, SynthesizedHash> Fast(16,
                                                                 SsnHash);
  std::unordered_map<std::string, Citizen> Standard;
  for (size_t I = 0; I != Ssns.size(); ++I) {
    const Citizen Person{"citizen-" + std::to_string(I),
                         1940 + static_cast<int>(I % 80)};
    Fast.emplace(Ssns[I], Person);
    Standard.emplace(Ssns[I], Person);
  }

  const double FastRate = lookupsPerSecond(Fast, Ssns);
  const double StdRate = lookupsPerSecond(Standard, Ssns);
  std::printf("lookups/s  specialized: %.2fM   std::hash: %.2fM   "
              "speedup: %.2fx\n",
              FastRate / 1e6, StdRate / 1e6, FastRate / StdRate);

  std::printf("sample: %s -> %s\n", Ssns.front().c_str(),
              Fast.at(Ssns.front()).Name.c_str());
  return 0;
}
