//===- examples/learned_kv.cpp - Specialized storage extension ------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conclusion of the paper points at specializing *storage*, not
/// just hashing. This example builds a small key-value store over
/// Brazilian CPF numbers using FlatIndexMap: because the synthesized
/// Pext function is a proven bijection, the store never keeps the key
/// strings — each entry is a 64-bit image plus the payload — and lookup
/// never compares strings.
///
//===----------------------------------------------------------------------===//

#include "container/flat_index_map.h"
#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "keygen/distributions.h"
#include "keygen/paper_formats.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <unordered_map>

using namespace sepe;

namespace {

struct Account {
  uint32_t BalanceCents;
  uint32_t Flags;
};

template <typename LookupFn>
double lookupsPerSecond(const std::vector<std::string> &Keys,
                        LookupFn Lookup) {
  uint64_t Found = 0;
  const auto Start = std::chrono::steady_clock::now();
  for (int Round = 0; Round != 20; ++Round)
    for (const std::string &Key : Keys)
      Found += Lookup(Key);
  const auto End = std::chrono::steady_clock::now();
  asm volatile("" : : "r"(Found) : "memory");
  return 20.0 * static_cast<double>(Keys.size()) /
         std::chrono::duration<double>(End - Start).count();
}

} // namespace

int main() {
  // CPF: \d{3}\.\d{3}\.\d{3}-\d{2} — 11 digits = 44 relevant bits, so
  // Pext proves a bijection.
  Expected<HashPlan> Plan = synthesize(
      paperKeyFormat(PaperKey::CPF).abstract(), HashFamily::Pext);
  if (!Plan) {
    std::fprintf(stderr, "synthesis error: %s\n",
                 Plan.error().Message.c_str());
    return 1;
  }
  std::printf("CPF Pext plan: %u relevant bits, bijective: %s\n",
              Plan->FreeBits, Plan->Bijective ? "yes" : "no");
  const SynthesizedHash CpfHash(*Plan);

  KeyGenerator Gen(paperKeyFormat(PaperKey::CPF), KeyDistribution::Uniform,
                   4242);
  const std::vector<std::string> Cpfs = Gen.distinct(200000);

  // The specialized store vs the idiomatic STL map.
  FlatIndexMap<Account> Store(CpfHash, Cpfs.size());
  std::unordered_map<std::string, Account> Standard;
  for (size_t I = 0; I != Cpfs.size(); ++I) {
    const Account A{static_cast<uint32_t>(I * 100 % 1000000),
                    static_cast<uint32_t>(I & 3)};
    Store.insert(Cpfs[I], A);
    Standard.emplace(Cpfs[I], A);
  }
  std::printf("stored %zu accounts; max probe length %zu\n", Store.size(),
              Store.maxProbeLength());

  const double FlatRate = lookupsPerSecond(
      Cpfs, [&](const std::string &K) { return Store.find(K) != nullptr; });
  const double StdRate = lookupsPerSecond(
      Cpfs, [&](const std::string &K) { return Standard.count(K); });
  std::printf("lookups/s  FlatIndexMap: %.2fM   unordered_map+std::hash: "
              "%.2fM   speedup: %.2fx\n",
              FlatRate / 1e6, StdRate / 1e6, FlatRate / StdRate);

  // Updates and deletes work like any map.
  Account *First = Store.find(Cpfs.front());
  if (First != nullptr)
    First->BalanceCents += 1;
  Store.erase(Cpfs.back());
  std::printf("after one erase: %zu accounts, %s still present\n",
              Store.size(),
              Store.contains(Cpfs.front()) ? "first" : "none");

  // Soundness guardrail: a non-bijective plan is rejected at
  // construction (assert) — MAC addresses carry 96 relevant bits.
  Expected<HashPlan> MacPlan = synthesize(
      paperKeyFormat(PaperKey::MAC).abstract(), HashFamily::Pext);
  if (MacPlan)
    std::printf("MAC plan bijective: %s -> FlatIndexMap refuses it\n",
                MacPlan->Bijective ? "yes" : "no");
  return 0;
}
