//===- examples/url_router.cpp - Examples 3.7/3.8: URL keys ---------------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny HTTP route cache keyed by URLs with a long constant prefix —
/// the scenario of Examples 3.7 and 3.8. Shows how the synthesizer
/// skips the constant subsequence entirely (the OffXor plan reads only
/// the slug), prints the generated code for both the fixed-length and
/// the variable-length (skip table) cases, and compares hashing
/// throughput against the STL.
///
//===----------------------------------------------------------------------===//

#include "core/codegen.h"
#include "core/executor.h"
#include "core/regex_parser.h"
#include "core/synthesizer.h"
#include "hashes/murmur.h"
#include "keygen/distributions.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <unordered_map>

using namespace sepe;

namespace {

template <typename Hasher>
double hashNsPerKey(const Hasher &Hash,
                    const std::vector<std::string> &Keys) {
  uint64_t Sink = 0;
  const auto Start = std::chrono::steady_clock::now();
  for (int Round = 0; Round != 2000; ++Round)
    for (const std::string &Key : Keys)
      Sink += Hash(Key);
  const auto End = std::chrono::steady_clock::now();
  asm volatile("" : : "r"(Sink) : "memory");
  return std::chrono::duration<double, std::nano>(End - Start).count() /
         (2000.0 * static_cast<double>(Keys.size()));
}

} // namespace

int main() {
  // Example 3.8's simplified keys: constant URL prefix + SSN payload.
  const char *FixedRegex =
      R"(https://example\.com/src\?ssn=\d{3}\.\d{2}\.\d{4})";
  Expected<FormatSpec> Fixed = parseRegex(FixedRegex);
  if (!Fixed)
    return 1;
  Expected<HashPlan> FixedPlan =
      synthesize(Fixed->abstract(), HashFamily::OffXor);
  if (!FixedPlan)
    return 1;
  std::printf("fixed-length keys (%zu bytes): the plan reads only the "
              "SSN\n%s\n",
              Fixed->maxLength(), FixedPlan->str().c_str());
  std::printf("%s\n", emitHashFunction(*FixedPlan).c_str());

  // Example 3.7's full format appends a variable name field: the
  // generated function uses the skip table of Figure 8.
  const char *VariableRegex =
      R"(https://example\.com/src\?ssn=\d{3}\.\d{2}\.\d{4}&name=(\w){0,12})";
  Expected<FormatSpec> Variable = parseRegex(VariableRegex);
  if (!Variable)
    return 1;
  Expected<HashPlan> VariablePlan =
      synthesize(Variable->abstract(), HashFamily::OffXor);
  if (!VariablePlan)
    return 1;
  std::printf("variable-length keys: skip table drives the loop\n%s\n",
              VariablePlan->str().c_str());
  std::printf("%s\n", emitHashFunction(*VariablePlan).c_str());

  // Route cache in action.
  const SynthesizedHash UrlHash(*FixedPlan);
  std::unordered_map<std::string, int, SynthesizedHash> Routes(16, UrlHash);
  KeyGenerator Gen(*Fixed, KeyDistribution::Uniform, 7);
  const std::vector<std::string> Urls = Gen.distinct(20000);
  for (size_t I = 0; I != Urls.size(); ++I)
    Routes.emplace(Urls[I], static_cast<int>(I % 16));
  std::printf("route cache: %zu URLs, %zu buckets, handler(%s) = %d\n",
              Routes.size(), Routes.bucket_count(), Urls.front().c_str(),
              Routes.at(Urls.front()));

  const double Specialized = hashNsPerKey(UrlHash, Urls);
  const double Stl = hashNsPerKey(MurmurStlHash{}, Urls);
  std::printf("hashing: specialized %.1f ns/key vs STL %.1f ns/key "
              "(%.1fx) - the constant prefix is never read\n",
              Specialized, Stl, Stl / Specialized);
  return 0;
}
