//===- examples/mac_inventory.cpp - Inference-driven MAC inventory --------===//
//
// Part of the SEPE reproduction. Released under the GPL-3.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A network-device inventory keyed by MAC addresses, driven end to end
/// through the example-based interface (Section 3.1): observe real
/// keys, infer the regular expression with the quad-semilattice join,
/// synthesize all four hash families, and pick the best one for an
/// unordered_set-based deduplication pass.
///
//===----------------------------------------------------------------------===//

#include "core/executor.h"
#include "core/inference.h"
#include "core/regex_parser.h"
#include "core/regex_printer.h"
#include "core/synthesizer.h"
#include "keygen/distributions.h"
#include "keygen/paper_formats.h"

#include <cstdio>
#include <string>
#include <unordered_set>

using namespace sepe;

int main() {
  // 1. Observe example keys (e.g. sniffed from the network). Lower- and
  // upper-case hex digits both occur, as the paper's MAC format allows.
  KeyGenerator Observer(paperKeyFormat(PaperKey::MAC),
                        KeyDistribution::Uniform, 0xacc);
  std::vector<std::string> Observed = Observer.distinct(64);
  std::printf("observed %zu MAC addresses; first: %s\n", Observed.size(),
              Observed.front().c_str());

  // 2. Infer the format (the keybuilder path).
  const KeyPattern Pattern = inferPattern(Observed);
  const std::string Regex = printRegex(Pattern);
  std::printf("inferred regex: %s\n", Regex.c_str());
  std::printf("free bits per key: %u of %zu\n", Pattern.freeBitCount(),
              8 * Pattern.maxLength());

  // 3. Synthesize all four families and report their plans.
  Expected<std::array<HashPlan, 4>> Plans = synthesizeAllFamilies(Pattern);
  if (!Plans) {
    std::fprintf(stderr, "synthesis error: %s\n",
                 Plans.error().Message.c_str());
    return 1;
  }
  for (const HashPlan &Plan : *Plans)
    std::printf("  %-6s: %zu loads%s\n", familyName(Plan.Family),
                Plan.Steps.size(),
                Plan.Family == HashFamily::Pext ? " (+pext masks)" : "");

  // 4. Deduplicate a stream of sightings with the OffXor hash.
  const SynthesizedHash MacHash((*Plans)[1]);
  std::unordered_set<std::string, SynthesizedHash> Seen(16, MacHash);
  KeyGenerator Stream(paperKeyFormat(PaperKey::MAC),
                      KeyDistribution::Normal, 0xcafe);
  size_t Sightings = 0, Unique = 0;
  for (int I = 0; I != 50000; ++I) {
    ++Sightings;
    if (Seen.insert(Stream.next()).second)
      ++Unique;
  }
  std::printf("dedup: %zu sightings -> %zu unique devices\n", Sightings,
              Unique);

  // 5. Sanity: the inferred-format hash accepts every observed key and
  // agrees with a hash synthesized from the paper's official regex.
  Expected<FormatSpec> Official = parseRegex(paperKeyRegex(PaperKey::MAC));
  if (!Official)
    return 1;
  Expected<HashPlan> OfficialPlan =
      synthesize(Official->abstract(), HashFamily::OffXor);
  if (!OfficialPlan)
    return 1;
  const SynthesizedHash OfficialHash(OfficialPlan.take());
  for (const std::string &Mac : Observed)
    if (MacHash(Mac) != OfficialHash(Mac)) {
      std::printf("note: inferred hash differs from official-regex hash "
                  "(the example set may constrain more quads)\n");
      break;
    }
  std::printf("done.\n");
  return 0;
}
